#include "cache/fingerprint.hpp"

#include <cstring>

namespace qsyn::cache {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t
fnv1a(std::uint64_t h, unsigned char byte)
{
    return (h ^ byte) * kFnvPrime;
}

} // namespace

void
Fingerprint::mixBytes(const void *data, size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        lo_ = fnv1a(lo_, bytes[i]);
        // Second lane: same byte stream, different basis and an extra
        // rotation so the lanes decorrelate.
        hi_ = fnv1a(hi_, bytes[i]);
        hi_ = (hi_ << 7) | (hi_ >> 57);
    }
}

void
Fingerprint::mixU64(std::uint64_t value)
{
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<unsigned char>(value >> (8 * i));
    mixBytes(buf, sizeof buf);
}

void
Fingerprint::mixString(std::string_view text)
{
    mixU64(text.size());
    mixBytes(text.data(), text.size());
}

void
Fingerprint::mixDouble(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    mixU64(bits);
}

std::string
Fingerprint::hex() const
{
    static const char *kDigits = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (std::uint64_t lane : {lo_, hi_}) {
        for (int shift = 60; shift >= 0; shift -= 4)
            out.push_back(kDigits[(lane >> shift) & 0xF]);
    }
    return out;
}

void
mixCircuit(Fingerprint &fp, const Circuit &circuit)
{
    fp.mixString(circuit.name());
    fp.mixU64(circuit.numQubits());
    fp.mixU64(circuit.gates().size());
    for (const Gate &g : circuit.gates()) {
        fp.mixU64(static_cast<std::uint64_t>(g.kind()));
        fp.mixDouble(g.param());
        fp.mixU64(g.controls().size());
        for (Qubit q : g.controls())
            fp.mixU64(q);
        fp.mixU64(g.targets().size());
        for (Qubit q : g.targets())
            fp.mixU64(q);
        fp.mixU64(g.cbit());
    }
}

void
mixDevice(Fingerprint &fp, const Device &device)
{
    fp.mixString(device.name());
    fp.mixU64(device.numQubits());
    fp.mixU64(device.isFullyConnected() ? 1 : 0);
    const CouplingMap &map = device.coupling();
    for (Qubit c = 0; c < device.numQubits(); ++c) {
        const auto &targets = map.targetsOf(c);
        fp.mixU64(targets.size());
        for (Qubit t : targets)
            fp.mixU64(t);
    }
    const Calibration *cal = device.calibration();
    fp.mixU64(cal != nullptr ? 1 : 0);
    if (cal != nullptr) {
        for (Qubit q = 0; q < device.numQubits(); ++q) {
            fp.mixDouble(cal->singleQubitError(q));
            fp.mixDouble(cal->readoutError(q));
        }
        for (Qubit c = 0; c < device.numQubits(); ++c) {
            for (Qubit t : map.targetsOf(c))
                fp.mixDouble(cal->twoQubitError(c, t));
        }
    }
}

void
mixCompileOptions(Fingerprint &fp, const CompileOptions &options)
{
    fp.mixU64(static_cast<std::uint64_t>(options.mcxStrategy));
    fp.mixU64(static_cast<std::uint64_t>(options.placement));
    fp.mixU64(static_cast<std::uint64_t>(options.routing.router));
    fp.mixU64(options.routing.sabreWindow);
    fp.mixU64(options.routing.meetInMiddle ? 1 : 0);
    fp.mixU64(options.routing.fidelityAware ? 1 : 0);
    fp.mixU64(options.routing.dynamicLayout ? 1 : 0);
    fp.mixU64(options.routing.testOmitSwapBack ? 1 : 0);
    fp.mixU64(options.optimize ? 1 : 0);
    fp.mixU64(options.optimizeTechIndependent ? 1 : 0);

    const opt::OptimizerOptions &o = options.optimizer;
    fp.mixDouble(o.weights.tWeight);
    fp.mixDouble(o.weights.cnotWeight);
    fp.mixDouble(o.weights.gateWeight);
    fp.mixU64(o.enableCancellation ? 1 : 0);
    fp.mixU64(o.enableRotationMerge ? 1 : 0);
    fp.mixU64(o.enableHadamardRules ? 1 : 0);
    fp.mixU64(o.enableWindowIdentity ? 1 : 0);
    fp.mixU64(o.enablePhasePolynomial ? 1 : 0);
    fp.mixU64(static_cast<std::uint64_t>(o.windowQubits));
    fp.mixU64(o.windowGates);
    fp.mixU64(static_cast<std::uint64_t>(o.maxRounds));
    // collectPassStats / capturePassCircuits change the report's
    // optimizer_passes content, so they are part of the key even
    // though the emitted circuit is identical either way.
    fp.mixU64(o.collectPassStats ? 1 : 0);
    fp.mixU64(o.capturePassCircuits ? 1 : 0);

    fp.mixU64(static_cast<std::uint64_t>(options.verify));
    fp.mixU64(options.verifyNodeBudget);
    fp.mixU64(options.verifyUpToGlobalPhase ? 1 : 0);
}

std::string
compileCacheKey(const Circuit &input, const Device &device,
                const CompileOptions &options, std::string_view salt)
{
    Fingerprint fp;
    fp.mixString("qsyn.compile");
    fp.mixString(salt);
    mixCircuit(fp, input);
    mixDevice(fp, device);
    mixCompileOptions(fp, options);
    return fp.hex();
}

std::string
equivalenceCacheKey(const Circuit &a, const Circuit &b,
                    const dd::EquivalenceOptions &options,
                    std::string_view salt)
{
    Fingerprint fp;
    fp.mixString("qsyn.equivalence");
    fp.mixString(salt);
    mixCircuit(fp, a);
    mixCircuit(fp, b);
    fp.mixU64(options.upToGlobalPhase ? 1 : 0);
    fp.mixU64(options.ancillaWires.size());
    for (Qubit q : options.ancillaWires)
        fp.mixU64(q);
    fp.mixU64(options.nodeBudget);
    fp.mixU64(options.useMiter ? 1 : 0);
    fp.mixDouble(options.approxEps);
    fp.mixU64(options.quickRefuteSamples);
    return fp.hex();
}

} // namespace qsyn::cache
