#include "cache/serialize.hpp"

#include <mutex>
#include <set>

#include "common/errors.hpp"
#include "ir/gate_kind.hpp"

namespace qsyn::cache {

namespace {

[[noreturn]] void
malformed(const char *what)
{
    throw Error(std::string("cache: malformed artifact: ") + what);
}

/**
 * PassReport/PassSnapshot carry `const char *` names that normally
 * point at string literals inside the optimizer. Decoded names are
 * interned here so the pointers stay valid for the life of the
 * process, exactly like the literals they replace.
 */
const char *
internPassName(const std::string &name)
{
    static std::mutex mu;
    static std::set<std::string> names;
    std::lock_guard<std::mutex> lock(mu);
    return names.insert(name).first->c_str();
}

} // namespace

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
ByteWriter::str(std::string_view s)
{
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

std::uint8_t
ByteReader::u8()
{
    if (pos_ + 1 > bytes_.size())
        malformed("truncated");
    return bytes_[pos_++];
}

std::uint32_t
ByteReader::u32()
{
    if (pos_ + 4 > bytes_.size())
        malformed("truncated");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    if (pos_ + 8 > bytes_.size())
        malformed("truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return v;
}

double
ByteReader::f64()
{
    std::uint64_t bits = u64();
    double v = 0;
    __builtin_memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
ByteReader::str()
{
    std::uint64_t size = u64();
    if (size > bytes_.size() - pos_)
        malformed("truncated string");
    std::string s(bytes_.begin() + static_cast<long>(pos_),
                  bytes_.begin() + static_cast<long>(pos_ + size));
    pos_ += size;
    return s;
}

void
encodeCircuit(ByteWriter &w, const Circuit &circuit)
{
    w.str(circuit.name());
    w.u32(circuit.numQubits());
    w.u64(circuit.gates().size());
    for (const Gate &g : circuit.gates()) {
        w.u8(static_cast<std::uint8_t>(g.kind()));
        w.f64(g.param());
        w.u64(g.controls().size());
        for (Qubit q : g.controls())
            w.u32(q);
        w.u64(g.targets().size());
        for (Qubit q : g.targets())
            w.u32(q);
        w.u32(g.cbit());
    }
}

Circuit
decodeCircuit(ByteReader &r)
{
    std::string name = r.str();
    Qubit num_qubits = r.u32();
    std::uint64_t num_gates = r.u64();
    Circuit circuit(num_qubits, std::move(name));
    for (std::uint64_t i = 0; i < num_gates; ++i) {
        std::uint8_t kind_byte = r.u8();
        if (kind_byte >= kNumGateKinds)
            malformed("bad gate kind");
        auto kind = static_cast<GateKind>(kind_byte);
        double param = r.f64();
        std::uint64_t nc = r.u64();
        std::vector<Qubit> controls;
        controls.reserve(nc);
        for (std::uint64_t c = 0; c < nc; ++c)
            controls.push_back(r.u32());
        std::uint64_t nt = r.u64();
        std::vector<Qubit> targets;
        targets.reserve(nt);
        for (std::uint64_t t = 0; t < nt; ++t)
            targets.push_back(r.u32());
        Cbit cbit = r.u32();
        if (kind == GateKind::Measure) {
            if (nt != 1 || nc != 0)
                malformed("bad measure shape");
            circuit.add(Gate::measure(targets[0], cbit));
        } else if (kind == GateKind::Barrier) {
            circuit.add(Gate::barrier(std::move(targets)));
        } else {
            circuit.add(Gate(kind, std::move(controls),
                             std::move(targets), param));
        }
    }
    return circuit;
}

namespace {

void
encodeMetrics(ByteWriter &w, const StageMetrics &m)
{
    w.u64(m.tCount);
    w.u64(m.gates);
    w.f64(m.cost);
    w.u64(m.depth);
}

StageMetrics
decodeMetrics(ByteReader &r)
{
    StageMetrics m;
    m.tCount = r.u64();
    m.gates = r.u64();
    m.cost = r.f64();
    m.depth = r.u64();
    return m;
}

void
encodeQubitVec(ByteWriter &w, const std::vector<Qubit> &v)
{
    w.u64(v.size());
    for (Qubit q : v)
        w.u32(q);
}

std::vector<Qubit>
decodeQubitVec(ByteReader &r)
{
    std::uint64_t n = r.u64();
    std::vector<Qubit> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(r.u32());
    return v;
}

} // namespace

std::vector<std::uint8_t>
encodeCachedCompile(const CachedCompile &artifact)
{
    const CompileResult &res = artifact.result;
    ByteWriter w;
    encodeCircuit(w, res.input);
    encodeCircuit(w, res.decomposed);
    encodeCircuit(w, res.mapped);
    encodeCircuit(w, res.optimized);
    encodeQubitVec(w, res.placement);
    encodeQubitVec(w, res.ancillas);
    encodeMetrics(w, res.techIndependent);
    encodeMetrics(w, res.unoptimized);
    encodeMetrics(w, res.optimizedM);

    w.u64(res.routeStats.nativeCnots);
    w.u64(res.routeStats.reversedCnots);
    w.u64(res.routeStats.reroutedCnots);
    w.u64(res.routeStats.swapsInserted);
    w.u64(res.routeStats.hInserted);

    const opt::OptimizeReport &rep = res.optReport;
    w.f64(rep.initialCost);
    w.f64(rep.finalCost);
    w.u64(rep.initialGates);
    w.u64(rep.finalGates);
    w.u64(static_cast<std::uint64_t>(rep.rounds));
    w.u64(rep.passes.size());
    for (const opt::PassReport &p : rep.passes) {
        w.str(p.name);
        w.u64(static_cast<std::uint64_t>(p.invocations));
        w.u64(static_cast<std::uint64_t>(p.changedRounds));
        w.u64(p.gatesRemoved);
        w.f64(p.costDelta);
    }
    w.u64(rep.snapshots.size());
    for (const opt::PassSnapshot &s : rep.snapshots) {
        w.str(s.pass);
        w.u64(static_cast<std::uint64_t>(s.round));
        encodeCircuit(w, s.before);
        encodeCircuit(w, s.after);
    }

    const dd::PackageStats &st = res.ddStats;
    w.u64(st.uniqueLookups);
    w.u64(st.uniqueHits);
    w.u64(st.uniqueRehashes);
    w.u64(st.multiplies);
    w.u64(st.additions);
    w.u64(st.computeLookups);
    w.u64(st.computeHits);
    w.u64(st.mulEvictions);
    w.u64(st.addEvictions);
    w.u64(st.ctEvictions);
    w.u64(st.gcRuns);
    w.u64(st.peakNodes);
    w.u64(res.ddLiveNodes);

    w.u8(static_cast<std::uint8_t>(res.verification));
    w.u8(res.verifyRan ? 1 : 0);

    w.f64(res.decomposeSeconds);
    w.f64(res.placeSeconds);
    w.f64(res.routeSeconds);
    w.f64(res.optimizeSeconds);
    w.f64(res.verifySeconds);
    w.f64(res.totalSeconds);

    // Resource accounting of the original (cold) compile. A cache hit
    // reports what the artifact *cost to produce*, not the lookup —
    // the lookup's own cost lands in the cache.* histograms.
    w.f64(res.resources.wallSeconds);
    w.f64(res.resources.userCpuSeconds);
    w.f64(res.resources.sysCpuSeconds);
    w.u64(static_cast<std::uint64_t>(res.resources.peakRssDeltaKb));
    w.u64(static_cast<std::uint64_t>(res.resources.peakRssKb));
    w.u64(res.resources.qmddPeakNodes);
    w.u64(res.resources.qmddArenaBytes);
    w.u8(res.resources.valid ? 1 : 0);

    w.str(artifact.qasm);
    return w.take();
}

CachedCompile
decodeCachedCompile(const std::vector<std::uint8_t> &bytes)
{
    ByteReader r(bytes);
    CachedCompile artifact;
    CompileResult &res = artifact.result;
    res.input = decodeCircuit(r);
    res.decomposed = decodeCircuit(r);
    res.mapped = decodeCircuit(r);
    res.optimized = decodeCircuit(r);
    res.placement = decodeQubitVec(r);
    res.ancillas = decodeQubitVec(r);
    res.techIndependent = decodeMetrics(r);
    res.unoptimized = decodeMetrics(r);
    res.optimizedM = decodeMetrics(r);

    res.routeStats.nativeCnots = r.u64();
    res.routeStats.reversedCnots = r.u64();
    res.routeStats.reroutedCnots = r.u64();
    res.routeStats.swapsInserted = r.u64();
    res.routeStats.hInserted = r.u64();

    opt::OptimizeReport &rep = res.optReport;
    rep.initialCost = r.f64();
    rep.finalCost = r.f64();
    rep.initialGates = r.u64();
    rep.finalGates = r.u64();
    rep.rounds = static_cast<int>(r.u64());
    std::uint64_t num_passes = r.u64();
    for (std::uint64_t i = 0; i < num_passes; ++i) {
        opt::PassReport p;
        p.name = internPassName(r.str());
        p.invocations = static_cast<int>(r.u64());
        p.changedRounds = static_cast<int>(r.u64());
        p.gatesRemoved = r.u64();
        p.costDelta = r.f64();
        rep.passes.push_back(p);
    }
    std::uint64_t num_snapshots = r.u64();
    for (std::uint64_t i = 0; i < num_snapshots; ++i) {
        opt::PassSnapshot s;
        s.pass = internPassName(r.str());
        s.round = static_cast<int>(r.u64());
        s.before = decodeCircuit(r);
        s.after = decodeCircuit(r);
        rep.snapshots.push_back(std::move(s));
    }

    dd::PackageStats &st = res.ddStats;
    st.uniqueLookups = r.u64();
    st.uniqueHits = r.u64();
    st.uniqueRehashes = r.u64();
    st.multiplies = r.u64();
    st.additions = r.u64();
    st.computeLookups = r.u64();
    st.computeHits = r.u64();
    st.mulEvictions = r.u64();
    st.addEvictions = r.u64();
    st.ctEvictions = r.u64();
    st.gcRuns = r.u64();
    st.peakNodes = r.u64();
    res.ddLiveNodes = r.u64();

    std::uint8_t verdict = r.u8();
    if (verdict > static_cast<std::uint8_t>(dd::Equivalence::Inconclusive))
        malformed("bad verification verdict");
    res.verification = static_cast<dd::Equivalence>(verdict);
    res.verifyRan = r.u8() != 0;

    res.decomposeSeconds = r.f64();
    res.placeSeconds = r.f64();
    res.routeSeconds = r.f64();
    res.optimizeSeconds = r.f64();
    res.verifySeconds = r.f64();
    res.totalSeconds = r.f64();

    res.resources.wallSeconds = r.f64();
    res.resources.userCpuSeconds = r.f64();
    res.resources.sysCpuSeconds = r.f64();
    res.resources.peakRssDeltaKb = static_cast<std::int64_t>(r.u64());
    res.resources.peakRssKb = static_cast<std::int64_t>(r.u64());
    res.resources.qmddPeakNodes = r.u64();
    res.resources.qmddArenaBytes = r.u64();
    res.resources.valid = r.u8() != 0;

    artifact.qasm = r.str();
    if (!r.atEnd())
        malformed("trailing bytes");
    return artifact;
}

} // namespace qsyn::cache
