/**
 * @file
 * Content-addressed cache keys: a stable 128-bit fingerprint over
 * (canonical circuit serialization, device definition, CompileOptions,
 * compiler version salt), rendered as 32 hex characters.
 *
 * The fingerprint covers everything that can change the bytes of a
 * compile's output — gate stream, register shape, circuit name (it
 * appears in report JSON), coupling map, calibration data, every
 * option field, and a version salt so a new compiler release never
 * replays artifacts produced by an old one.
 */

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/compiler.hpp"
#include "qmdd/equivalence.hpp"

namespace qsyn::cache {

/** Incremental two-lane FNV-1a hasher (2 x 64 bit). Not
 *  cryptographic; collision odds at cache scale are negligible and a
 *  corrupted/forged entry is caught by the store's payload checksum. */
class Fingerprint
{
  public:
    void mixBytes(const void *data, size_t size);
    void mixU64(std::uint64_t value);
    /** Length-prefixed, so "ab"+"c" != "a"+"bc". */
    void mixString(std::string_view text);
    /** Exact bit pattern: -0.0 != +0.0, every NaN payload distinct. */
    void mixDouble(double value);

    /** 32 lowercase hex characters. */
    std::string hex() const;

  private:
    std::uint64_t lo_ = 0xcbf29ce484222325ull; // FNV-1a offset basis
    std::uint64_t hi_ = 0x9e3779b97f4a7c15ull; // golden-ratio seed
};

/** Mix a full circuit: name, width, and the exact gate stream. */
void mixCircuit(Fingerprint &fp, const Circuit &circuit);

/** Mix a device: name, size, coupling edges, calibration (if any). */
void mixDevice(Fingerprint &fp, const Device &device);

/** Mix every CompileOptions field. */
void mixCompileOptions(Fingerprint &fp, const CompileOptions &options);

/** Cache key for one compilation. */
std::string compileCacheKey(const Circuit &input, const Device &device,
                            const CompileOptions &options,
                            std::string_view salt);

/** Cache key for one qverify equivalence query (both circuits plus
 *  every EquivalenceOptions field). */
std::string equivalenceCacheKey(const Circuit &a, const Circuit &b,
                                const dd::EquivalenceOptions &options,
                                std::string_view salt);

} // namespace qsyn::cache
