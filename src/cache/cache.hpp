/**
 * @file
 * The compile cache: a two-tier (in-process LRU + optional on-disk
 * store), content-addressed memoizer for whole CompileResults, with
 * single-flight deduplication so concurrent batch workers compiling
 * identical inputs compute once and share the artifact.
 *
 * Wire-up: construct one CompileCache per tool run, hand it to
 * BatchCompiler::setCache / Compiler::compileCached. Hit, miss, store,
 * eviction, and dedup events are exported as cache.* counters on the
 * installed obs sink; publishMetrics adds the size gauges.
 */

#pragma once

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cache/store.hpp"
#include "core/compile_cache.hpp"

namespace qsyn::cache {

/**
 * Version salt folded into every fingerprint. Bump whenever the
 * compiler's output or the artifact encoding changes meaning: old
 * entries become unreachable (and age out by LRU) instead of being
 * replayed incorrectly.
 */
inline constexpr const char *kCacheVersionSalt = "qsyn-cache-v4";

struct CacheConfig
{
    /** On-disk store root; empty = in-memory tier only. */
    std::string dir;
    /** Disk byte budget before LRU eviction. */
    std::uint64_t maxDiskBytes = 256ull << 20;
    /** In-process tier capacity (whole artifacts, shared_ptr'd). */
    size_t maxMemoryEntries = 64;
    /** Fingerprint salt; override in tests to simulate a release. */
    std::string versionSalt = kCacheVersionSalt;
};

/** Cumulative counters for one CompileCache instance. */
struct CacheStats
{
    size_t hits = 0;        ///< memory + disk + single-flight shares
    size_t misses = 0;      ///< keys that ran a cold compile
    size_t memoryHits = 0;
    size_t diskHits = 0;
    size_t stores = 0;      ///< artifacts committed (memory tier)
    size_t singleFlightShared = 0; ///< waiters served by a leader
    size_t diskEvictions = 0;
    std::uint64_t diskBytes = 0;
    size_t diskEntries = 0;
    size_t memoryEntries = 0;
};

/** Two-tier content-addressed compile memoizer with single-flight. */
class CompileCache : public CompileCacheBase
{
  public:
    explicit CompileCache(CacheConfig config = {});

    std::shared_ptr<const CachedCompile>
    getOrCompute(const Circuit &input, const Device &device,
                 const CompileOptions &options,
                 const std::function<CachedCompile()> &compute) override;

    /** Point-in-time counters (thread-safe). */
    CacheStats stats() const;

    /**
     * Export `<prefix>.*` gauges (bytes, entries, plus counter
     * mirrors) on the installed obs sink. Counters are also emitted
     * incrementally as events happen; this adds the sizes.
     */
    void publishMetrics(const char *prefix = "cache") const;

    const CacheConfig &config() const { return config_; }

  private:
    /** One in-progress compute; waiters block on the condvar. */
    struct Flight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const CachedCompile> artifact;
        std::exception_ptr error;
    };

    std::shared_ptr<const CachedCompile>
    lookupMemoryLocked(const std::string &key);
    void insertMemoryLocked(const std::string &key,
                            std::shared_ptr<const CachedCompile> value);
    void bumpCounter(const char *name, double delta = 1.0) const;

    CacheConfig config_;
    std::unique_ptr<CacheStore> store_; // null when dir is empty

    mutable std::mutex mu_;
    /** MRU-front list + index: the in-process LRU tier. */
    std::list<std::pair<std::string, std::shared_ptr<const CachedCompile>>>
        lru_;
    std::unordered_map<std::string, decltype(lru_)::iterator> memory_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
    CacheStats stats_;
};

} // namespace qsyn::cache
