/**
 * @file
 * Binary codec for cached compile artifacts. encodeCachedCompile
 * produces a deterministic, self-contained byte string for one
 * CachedCompile (every CompileResult field, the original timings, and
 * the canonical QASM); decodeCachedCompile reconstructs it exactly —
 * the cache-correctness oracle asserts byte-identity of the QASM and
 * report JSON across a round trip.
 *
 * Decoding is defensive: any truncation, bad tag, or out-of-range
 * value throws qsyn::Error, which the cache layer treats as a miss
 * (the corrupt entry is dropped and the compile runs cold).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/compile_cache.hpp"

namespace qsyn::cache {

/** Appends fixed-width little-endian primitives to a byte buffer. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    void str(std::string_view s);

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked reader over an encoded buffer; throws qsyn::Error
 *  on any overrun. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    bool atEnd() const { return pos_ == bytes_.size(); }

  private:
    const std::vector<std::uint8_t> &bytes_;
    size_t pos_ = 0;
};

/** @name Circuit codec (also reused by the equivalence-cache tests). */
/// @{
void encodeCircuit(ByteWriter &w, const Circuit &circuit);
Circuit decodeCircuit(ByteReader &r);
/// @}

/** Serialize one cached compile (payload only; the store adds its own
 *  integrity header). */
std::vector<std::uint8_t>
encodeCachedCompile(const CachedCompile &artifact);

/** Inverse of encodeCachedCompile; throws qsyn::Error on malformed
 *  input. */
CachedCompile
decodeCachedCompile(const std::vector<std::uint8_t> &bytes);

} // namespace qsyn::cache
