/**
 * @file
 * OpenQASM 2.0 writer: the compiler's final output format (Fig. 2 of
 * the paper emits "QASM code" for the target machine).
 */

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qsyn::frontend {

/** Options controlling QASM emission. */
struct QasmWriterOptions
{
    /** Register name used for the single flattened quantum register. */
    std::string qregName = "q";
    /** Register name for classical bits (emitted when measures exist). */
    std::string cregName = "c";
    /** Emit a trailing measurement of every wire when the circuit has
     *  none (convenient for direct execution). */
    bool measureAll = false;
    /** Leading comment line (e.g. the target device). */
    std::string headerComment;
};

/**
 * Serialize a circuit as OpenQASM 2.0. Every gate must be expressible
 * with qelib1 vocabulary (up to 2 controls on X, 1 on Z/Y/H/rotations,
 * swap/cswap); wider generalized Toffolis must be decomposed first —
 * throws UserError otherwise.
 */
std::string writeQasm(const Circuit &circuit,
                      const QasmWriterOptions &options = {});

/** Write QASM to a file. Throws UserError on I/O failure. */
void writeQasmFile(const Circuit &circuit, const std::string &path,
                   const QasmWriterOptions &options = {});

} // namespace qsyn::frontend
