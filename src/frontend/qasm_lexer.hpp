/**
 * @file
 * Tokenizer for OpenQASM 2.0 source text.
 */

#pragma once

#include <string>
#include <vector>

namespace qsyn::frontend {

/** Token categories produced by the lexer. */
enum class TokenKind
{
    Identifier, ///< names and keywords (keywords resolved by the parser)
    Integer,    ///< unsigned decimal integer
    Real,       ///< floating-point literal
    String,     ///< double-quoted string (include paths)
    Symbol,     ///< one of ; , ( ) [ ] { } + - * / ^ or "->"
    EndOfFile
};

/** One lexical token with its source position. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;
    int line = 0;
    int column = 0;
};

/**
 * Tokenize OpenQASM 2.0 text. Strips // line comments. Throws
 * ParseError on an unrecognized character.
 */
std::vector<Token> tokenizeQasm(const std::string &source);

} // namespace qsyn::frontend
