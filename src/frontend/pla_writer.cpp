#include "frontend/pla_writer.hpp"

#include <sstream>

namespace qsyn::frontend {

std::string
writePla(const PlaFile &pla)
{
    std::ostringstream os;
    os << ".i " << pla.numInputs << "\n";
    os << ".o " << pla.numOutputs << "\n";
    if (!pla.inputNames.empty()) {
        os << ".ilb";
        for (const std::string &name : pla.inputNames)
            os << " " << name;
        os << "\n";
    }
    if (!pla.outputNames.empty()) {
        os << ".ob";
        for (const std::string &name : pla.outputNames)
            os << " " << name;
        os << "\n";
    }
    os << ".type esop\n";
    for (const PlaCube &cube : pla.cubes) {
        for (int i = 0; i < pla.numInputs; ++i) {
            std::uint64_t bit = 1ull << i;
            if ((cube.careMask & bit) == 0)
                os << '-';
            else
                os << ((cube.polarity & bit) != 0 ? '1' : '0');
        }
        os << ' ';
        for (int o = 0; o < pla.numOutputs; ++o)
            os << (((cube.outputs >> o) & 1) != 0 ? '1' : '0');
        os << "\n";
    }
    os << ".e\n";
    return os.str();
}

} // namespace qsyn::frontend
