#include "frontend/loader.hpp"

#include "common/errors.hpp"
#include "common/strings.hpp"
#include "frontend/qasm_parser.hpp"
#include "frontend/qc_parser.hpp"
#include "frontend/real_parser.hpp"

namespace qsyn::frontend {

CircuitFormat
formatFromExtension(const std::string &path)
{
    std::string lower = toLower(path);
    if (endsWith(lower, ".qasm"))
        return CircuitFormat::Qasm;
    if (endsWith(lower, ".qc"))
        return CircuitFormat::Qc;
    if (endsWith(lower, ".real"))
        return CircuitFormat::Real;
    return CircuitFormat::Unknown;
}

Circuit
loadCircuitFile(const std::string &path)
{
    switch (formatFromExtension(path)) {
      case CircuitFormat::Qasm:
        return loadQasmFile(path);
      case CircuitFormat::Qc:
        return loadQcFile(path);
      case CircuitFormat::Real:
        return loadRealFile(path);
      case CircuitFormat::Unknown:
        break;
    }
    throw UserError("cannot determine circuit format of '" + path +
                    "' (expected .qasm, .qc, or .real)");
}

} // namespace qsyn::frontend
