#include "frontend/loader.hpp"

#include "common/errors.hpp"
#include "common/strings.hpp"
#include "frontend/qasm_parser.hpp"
#include "frontend/qc_parser.hpp"
#include "frontend/real_parser.hpp"
#include "obs/obs.hpp"

namespace qsyn::frontend {

CircuitFormat
formatFromExtension(const std::string &path)
{
    std::string lower = toLower(path);
    if (endsWith(lower, ".qasm"))
        return CircuitFormat::Qasm;
    if (endsWith(lower, ".qc"))
        return CircuitFormat::Qc;
    if (endsWith(lower, ".real"))
        return CircuitFormat::Real;
    return CircuitFormat::Unknown;
}

namespace {

const char *
formatName(CircuitFormat format)
{
    switch (format) {
      case CircuitFormat::Qasm:
        return "qasm";
      case CircuitFormat::Qc:
        return "qc";
      case CircuitFormat::Real:
        return "real";
      case CircuitFormat::Unknown:
        break;
    }
    return "unknown";
}

} // namespace

Circuit
loadCircuitFile(const std::string &path)
{
    CircuitFormat format = formatFromExtension(path);
    obs::Span span("frontend.parse", "frontend");
    span.arg("path", path);
    span.arg("format", formatName(format));

    Circuit circuit = [&]() -> Circuit {
        switch (format) {
          case CircuitFormat::Qasm:
            return loadQasmFile(path);
          case CircuitFormat::Qc:
            return loadQcFile(path);
          case CircuitFormat::Real:
            return loadRealFile(path);
          case CircuitFormat::Unknown:
            break;
        }
        throw UserError("cannot determine circuit format of '" + path +
                        "' (expected .qasm, .qc, or .real)");
    }();

    span.arg("qubits", circuit.numQubits());
    span.arg("gates", circuit.size());
    if (obs::Sink *s = obs::sink()) {
        s->metrics().addCounter("frontend.files_loaded", 1.0);
        s->metrics().addCounter("frontend.gates_parsed",
                                static_cast<double>(circuit.size()));
    }
    QSYN_OBS_LOG(Debug, "frontend")
        << "loaded '" << path << "' (" << formatName(format) << "): "
        << circuit.numQubits() << " qubits, " << circuit.size()
        << " gates";
    return circuit;
}

} // namespace qsyn::frontend
