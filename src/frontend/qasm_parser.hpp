/**
 * @file
 * Recursive-descent parser for OpenQASM 2.0 producing a qsyn Circuit.
 *
 * Supported: OPENQASM/include headers, qreg/creg declarations (multiple
 * registers are flattened in declaration order), the qelib1 standard
 * gates, user `gate` definitions (expanded inline, recursively),
 * parameter expressions (+ - * / ^, pi, sin/cos/tan/exp/ln/sqrt),
 * whole-register broadcasting, measure and barrier.
 *
 * Not supported (rejected with ParseError): `if` conditionals, `reset`,
 * and calls to `opaque` gates — none of which appear in technology
 * mapping inputs.
 */

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qsyn::frontend {

/** Parse OpenQASM 2.0 source text into a circuit. Throws ParseError. */
Circuit parseQasm(const std::string &source, const std::string &name = "");

/** Load and parse a .qasm file. Throws UserError / ParseError. */
Circuit loadQasmFile(const std::string &path);

} // namespace qsyn::frontend
