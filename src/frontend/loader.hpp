/**
 * @file
 * Format-dispatching circuit loader (the paper's "various file formats
 * are supported for the input specification": .qasm, .qc, .real).
 */

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qsyn::frontend {

/** Circuit source formats the front end understands. */
enum class CircuitFormat
{
    Qasm,
    Qc,
    Real,
    Unknown
};

/** Guess the format from a file extension. */
CircuitFormat formatFromExtension(const std::string &path);

/**
 * Load a circuit, dispatching on the file extension (.qasm, .qc,
 * .real). Throws UserError for unknown extensions or I/O failures.
 */
Circuit loadCircuitFile(const std::string &path);

} // namespace qsyn::frontend
