/**
 * @file
 * ASCII circuit rendering: the textual equivalent of the paper's
 * circuit figures (Figs. 3, 5, 6), for documentation, examples, and
 * debugging of small circuits.
 *
 *     q0: ──H────●─────────
 *                │
 *     q1: ───────X────●────
 *                     │
 *     q2: ──T─────────X────
 */

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qsyn::frontend {

/** Drawing options. */
struct DrawOptions
{
    /** Maximum rendered columns before the drawing is truncated with
     *  an ellipsis marker (0 = unlimited). */
    size_t maxColumns = 0;
    /** Pack independent gates into the same column. */
    bool compact = true;
};

/** Render a circuit as ASCII art. */
std::string drawCircuit(const Circuit &circuit,
                        const DrawOptions &options = {});

} // namespace qsyn::frontend
