/**
 * @file
 * Parser for the RevLib .real reversible-circuit format (the paper's
 * second benchmark set, reference [24], uses RevLib Toffoli cascades).
 *
 * Supported gate types: tN (generalized Toffoli, including t1 = NOT and
 * t2 = CNOT), fN (generalized Fredkin / controlled swap), and pN
 * (Peres, expanded into Toffoli + CNOT). Negative controls (RevLib's
 * `-var` syntax) are expanded into X conjugation. Header directives
 * (.numvars, .variables, .inputs, .outputs, .constants, .garbage,
 * .version) are honored or safely ignored.
 */

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qsyn::frontend {

/** Parse .real text into a circuit. Throws ParseError. */
Circuit parseReal(const std::string &source, const std::string &name = "");

/** Load and parse a .real file. Throws UserError / ParseError. */
Circuit loadRealFile(const std::string &path);

} // namespace qsyn::frontend
