#include "frontend/qasm_lexer.hpp"

#include <cctype>

#include "common/errors.hpp"

namespace qsyn::frontend {

std::vector<Token>
tokenizeQasm(const std::string &source)
{
    std::vector<Token> tokens;
    int line = 1;
    int column = 1;
    size_t i = 0;
    const size_t n = source.size();

    auto peek = [&](size_t ahead = 0) -> char {
        return i + ahead < n ? source[i + ahead] : '\0';
    };
    auto advance = [&]() {
        if (source[i] == '\n') {
            ++line;
            column = 1;
        } else {
            ++column;
        }
        ++i;
    };

    while (i < n) {
        char c = peek();
        if (c == '/' && peek(1) == '/') {
            while (i < n && peek() != '\n')
                advance();
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }

        Token tok;
        tok.line = line;
        tok.column = column;

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            while (i < n && (std::isalnum(static_cast<unsigned char>(
                                 peek())) ||
                             peek() == '_')) {
                tok.text += peek();
                advance();
            }
            tok.kind = TokenKind::Identifier;
            tokens.push_back(std::move(tok));
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(
                             peek(1))))) {
            bool is_real = false;
            while (i < n) {
                char d = peek();
                if (std::isdigit(static_cast<unsigned char>(d))) {
                    tok.text += d;
                    advance();
                } else if (d == '.' && !is_real) {
                    is_real = true;
                    tok.text += d;
                    advance();
                } else if ((d == 'e' || d == 'E') &&
                           (std::isdigit(static_cast<unsigned char>(
                                peek(1))) ||
                            ((peek(1) == '+' || peek(1) == '-') &&
                             std::isdigit(static_cast<unsigned char>(
                                 peek(2)))))) {
                    is_real = true;
                    tok.text += d;
                    advance();
                    if (peek() == '+' || peek() == '-') {
                        tok.text += peek();
                        advance();
                    }
                } else {
                    break;
                }
            }
            tok.kind = is_real ? TokenKind::Real : TokenKind::Integer;
            tokens.push_back(std::move(tok));
            continue;
        }

        if (c == '"') {
            advance();
            while (i < n && peek() != '"') {
                tok.text += peek();
                advance();
            }
            if (i >= n)
                throw ParseError("unterminated string literal", tok.line,
                                 tok.column);
            advance(); // closing quote
            tok.kind = TokenKind::String;
            tokens.push_back(std::move(tok));
            continue;
        }

        if (c == '-' && peek(1) == '>') {
            tok.kind = TokenKind::Symbol;
            tok.text = "->";
            advance();
            advance();
            tokens.push_back(std::move(tok));
            continue;
        }

        static const std::string kSymbols = ";,()[]{}+-*/^";
        if (kSymbols.find(c) != std::string::npos) {
            tok.kind = TokenKind::Symbol;
            tok.text = std::string(1, c);
            advance();
            tokens.push_back(std::move(tok));
            continue;
        }

        throw ParseError(std::string("unexpected character '") + c + "'",
                         line, column);
    }

    Token eof;
    eof.kind = TokenKind::EndOfFile;
    eof.line = line;
    eof.column = column;
    tokens.push_back(eof);
    return tokens;
}

} // namespace qsyn::frontend
