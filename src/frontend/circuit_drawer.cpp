#include "frontend/circuit_drawer.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.hpp"

namespace qsyn::frontend {

namespace {

/** Cell label for the gate's target wire(s). */
std::string
targetLabel(const Gate &g)
{
    switch (g.kind()) {
      case GateKind::X:
        return "X";
      case GateKind::Swap:
        return "x";
      case GateKind::Measure:
        return "M";
      case GateKind::Barrier:
        return "=";
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
      case GateKind::P: {
        std::string name = toLower(kindName(g.kind()));
        name[0] = static_cast<char>(std::toupper(name[0]));
        return name;
      }
      default: {
        std::string name = kindName(g.kind());
        for (char &c : name)
            c = static_cast<char>(std::toupper(c));
        if (name == "SDG")
            return "S+";
        if (name == "TDG")
            return "T+";
        return name;
      }
    }
}

} // namespace

std::string
drawCircuit(const Circuit &circuit, const DrawOptions &options)
{
    Qubit n = circuit.numQubits();
    if (n == 0)
        return "(empty register)\n";

    // Column assignment: greedy left-packing on wire *spans* so the
    // vertical connectors never collide.
    std::vector<size_t> next_free(n, 0);
    struct Placed
    {
        const Gate *gate;
        size_t column;
    };
    std::vector<Placed> placed;
    size_t num_columns = 0;
    for (const Gate &g : circuit) {
        auto wires = g.qubits();
        if (wires.empty())
            continue;
        Qubit lo = *std::min_element(wires.begin(), wires.end());
        Qubit hi = *std::max_element(wires.begin(), wires.end());
        size_t column = 0;
        if (options.compact) {
            for (Qubit q = lo; q <= hi; ++q)
                column = std::max(column, next_free[q]);
        } else {
            column = num_columns;
        }
        for (Qubit q = lo; q <= hi; ++q)
            next_free[q] = column + 1;
        placed.push_back({&g, column});
        num_columns = std::max(num_columns, column + 1);
    }

    bool truncated = false;
    if (options.maxColumns != 0 && num_columns > options.maxColumns) {
        num_columns = options.maxColumns;
        truncated = true;
    }

    // Cell grid: rows 2q are wires, odd rows are the gaps between.
    size_t rows = 2 * static_cast<size_t>(n) - 1;
    std::vector<std::vector<std::string>> cells(
        rows, std::vector<std::string>(num_columns));
    std::vector<std::vector<bool>> vertical(
        rows, std::vector<bool>(num_columns, false));

    for (const Placed &p : placed) {
        if (p.column >= num_columns)
            continue;
        const Gate &g = *p.gate;
        auto wires = g.qubits();
        Qubit lo = *std::min_element(wires.begin(), wires.end());
        Qubit hi = *std::max_element(wires.begin(), wires.end());
        for (Qubit c : g.controls())
            cells[2 * c][p.column] = "*";
        for (Qubit t : g.targets())
            cells[2 * t][p.column] = targetLabel(g);
        if (g.kind() == GateKind::Barrier) {
            for (Qubit t : g.targets())
                cells[2 * t][p.column] = "=";
        }
        // Vertical connector through the span.
        if (hi > lo) {
            for (size_t r = 2 * lo + 1; r < 2 * hi; ++r)
                vertical[r][p.column] = true;
        }
    }

    // Column widths.
    std::vector<size_t> widths(num_columns, 1);
    for (size_t c = 0; c < num_columns; ++c) {
        for (size_t r = 0; r < rows; ++r)
            widths[c] = std::max(widths[c], cells[r][c].size());
    }

    std::ostringstream os;
    size_t label_width = std::to_string(n - 1).size();
    for (size_t r = 0; r < rows; ++r) {
        bool is_wire = r % 2 == 0;
        if (is_wire) {
            std::string label = "q" + std::to_string(r / 2) + ":";
            os << label
               << std::string(label_width + 3 - label.size() + 1, ' ');
        } else {
            os << std::string(label_width + 4, ' ');
        }
        char fill = is_wire ? '-' : ' ';
        for (size_t c = 0; c < num_columns; ++c) {
            os << fill << fill;
            std::string cell = cells[r][c];
            if (cell.empty() && vertical[r][c])
                cell = "|";
            if (cell.empty())
                cell = std::string(1, fill);
            // Center-pad to the column width.
            size_t pad = widths[c] - cell.size();
            size_t left = pad / 2;
            os << std::string(left, fill) << cell
               << std::string(pad - left, fill);
        }
        os << fill << fill;
        if (is_wire && truncated)
            os << " ...";
        os << "\n";
    }
    if (truncated) {
        os << "(" << placed.size() << " gates total; drawing truncated "
           << "to " << num_columns << " columns)\n";
    }
    return os.str();
}

} // namespace qsyn::frontend
