/**
 * @file
 * PLA cube-list writer: the inverse of pla_parser, closing the
 * parse -> write -> reparse loop for the classical front end. Emitted
 * files always declare `.type esop` since qsyn interprets every PLA as
 * an exclusive-OR cube list.
 */

#pragma once

#include <string>

#include "frontend/pla_parser.hpp"

namespace qsyn::frontend {

/**
 * Serialize a PlaFile back into PLA text (`.i/.o[/.ilb/.ob]`, one cube
 * per line, `.e` terminator). parsePla(writePla(f)) reproduces f's
 * cubes, counts, and names exactly.
 */
std::string writePla(const PlaFile &pla);

} // namespace qsyn::frontend
