#include "frontend/qasm_writer.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "common/errors.hpp"
#include "common/strings.hpp"

namespace qsyn::frontend {

namespace {

std::string
qubitRef(const QasmWriterOptions &opt, Qubit q)
{
    return opt.qregName + "[" + std::to_string(q) + "]";
}

std::string
paramText(double value)
{
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
}

void
writeGate(std::ostringstream &os, const Gate &g,
          const QasmWriterOptions &opt)
{
    const auto &cs = g.controls();
    auto unsupported = [&]() -> UserError {
        return UserError("gate '" + g.toString() +
                         "' is not expressible in OpenQASM 2.0 / qelib1; "
                         "decompose it first");
    };

    switch (g.kind()) {
      case GateKind::Barrier: {
        os << "barrier";
        for (size_t i = 0; i < g.targets().size(); ++i)
            os << (i == 0 ? " " : ",") << qubitRef(opt, g.targets()[i]);
        os << ";\n";
        return;
      }
      case GateKind::Measure:
        os << "measure " << qubitRef(opt, g.target()) << " -> "
           << opt.cregName << "[" << g.cbit() << "];\n";
        return;
      case GateKind::Swap:
        if (cs.size() == 0) {
            os << "swap " << qubitRef(opt, g.targets()[0]) << ","
               << qubitRef(opt, g.targets()[1]) << ";\n";
        } else if (cs.size() == 1) {
            os << "cswap " << qubitRef(opt, cs[0]) << ","
               << qubitRef(opt, g.targets()[0]) << ","
               << qubitRef(opt, g.targets()[1]) << ";\n";
        } else {
            throw unsupported();
        }
        return;
      case GateKind::X:
        if (cs.size() == 0)
            os << "x " << qubitRef(opt, g.target()) << ";\n";
        else if (cs.size() == 1)
            os << "cx " << qubitRef(opt, cs[0]) << ","
               << qubitRef(opt, g.target()) << ";\n";
        else if (cs.size() == 2)
            os << "ccx " << qubitRef(opt, cs[0]) << ","
               << qubitRef(opt, cs[1]) << "," << qubitRef(opt, g.target())
               << ";\n";
        else
            throw unsupported();
        return;
      default:
        break;
    }

    // Remaining kinds: single-target gates with at most one control.
    std::string base = kindName(g.kind());
    if (g.kind() == GateKind::P)
        base = "u1";
    std::string name;
    if (cs.empty()) {
        name = base == "id" ? "id" : base;
    } else if (cs.size() == 1) {
        static const std::map<std::string, std::string> kControlled = {
            {"y", "cy"}, {"z", "cz"},   {"h", "ch"},
            {"rz", "crz"}, {"u1", "cu1"}};
        auto it = kControlled.find(base);
        if (it == kControlled.end())
            throw unsupported();
        name = it->second;
    } else {
        throw unsupported();
    }

    os << name;
    if (isParameterized(g.kind()))
        os << "(" << paramText(g.param()) << ")";
    os << " ";
    for (Qubit c : cs)
        os << qubitRef(opt, c) << ",";
    os << qubitRef(opt, g.target()) << ";\n";
}

} // namespace

std::string
writeQasm(const Circuit &circuit, const QasmWriterOptions &options)
{
    std::ostringstream os;
    if (!options.headerComment.empty())
        os << "// " << options.headerComment << "\n";
    if (!circuit.name().empty())
        os << "// circuit: " << circuit.name() << "\n";
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "qreg " << options.qregName << "[" << circuit.numQubits()
       << "];\n";

    bool has_measure = circuit.numCbits() > 0;
    if (has_measure || options.measureAll) {
        Cbit cbits = has_measure ? circuit.numCbits()
                                 : static_cast<Cbit>(circuit.numQubits());
        os << "creg " << options.cregName << "[" << cbits << "];\n";
    }

    for (const Gate &g : circuit)
        writeGate(os, g, options);

    if (!has_measure && options.measureAll) {
        for (Qubit q = 0; q < circuit.numQubits(); ++q) {
            os << "measure " << options.qregName << "[" << q << "] -> "
               << options.cregName << "[" << q << "];\n";
        }
    }
    return os.str();
}

void
writeQasmFile(const Circuit &circuit, const std::string &path,
              const QasmWriterOptions &options)
{
    std::ofstream out(path);
    if (!out)
        throw UserError("cannot write QASM file '" + path + "'");
    out << writeQasm(circuit, options);
    if (!out)
        throw UserError("I/O error while writing '" + path + "'");
}

} // namespace qsyn::frontend
