#include "frontend/circuit_writers.hpp"

#include <sstream>

#include "common/errors.hpp"

namespace qsyn::frontend {

namespace {

std::string
wireName(Qubit q)
{
    return "x" + std::to_string(q);
}

[[noreturn]] void
unsupported(const Gate &g, const char *format)
{
    throw UserError("gate '" + g.toString() + "' has no " + format +
                    " representation");
}

} // namespace

std::string
writeReal(const Circuit &circuit)
{
    std::ostringstream os;
    os << "# written by qsyn\n";
    os << ".version 1.0\n";
    os << ".numvars " << circuit.numQubits() << "\n";
    os << ".variables";
    for (Qubit q = 0; q < circuit.numQubits(); ++q)
        os << " " << wireName(q);
    os << "\n.begin\n";
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Barrier)
            continue;
        if (g.kind() == GateKind::X) {
            os << "t" << g.numQubits();
            for (Qubit c : g.controls())
                os << " " << wireName(c);
            os << " " << wireName(g.target()) << "\n";
            continue;
        }
        if (g.kind() == GateKind::Swap) {
            os << "f" << g.numQubits();
            for (Qubit c : g.controls())
                os << " " << wireName(c);
            os << " " << wireName(g.targets()[0]) << " "
               << wireName(g.targets()[1]) << "\n";
            continue;
        }
        unsupported(g, ".real");
    }
    os << ".end\n";
    return os.str();
}

std::string
writeQc(const Circuit &circuit)
{
    std::ostringstream os;
    os << "# written by qsyn\n";
    os << ".v";
    for (Qubit q = 0; q < circuit.numQubits(); ++q)
        os << " " << wireName(q);
    os << "\nBEGIN\n";
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Barrier)
            continue;
        std::string mnemonic;
        switch (g.kind()) {
          case GateKind::I:
            continue;
          case GateKind::X:
            mnemonic = g.numControls() == 0 ? "X" : "T";
            break;
          case GateKind::Y:
            mnemonic = "Y";
            break;
          case GateKind::Z:
            mnemonic = "Z";
            break;
          case GateKind::H:
            mnemonic = "H";
            break;
          case GateKind::S:
            mnemonic = "S";
            break;
          case GateKind::Sdg:
            mnemonic = "S*";
            break;
          case GateKind::T:
            if (g.numControls() != 0)
                unsupported(g, ".qc");
            mnemonic = "T";
            break;
          case GateKind::Tdg:
            if (g.numControls() != 0)
                unsupported(g, ".qc");
            mnemonic = "T*";
            break;
          case GateKind::Swap:
            mnemonic = g.numControls() == 0 ? "swap" : "F";
            break;
          default:
            unsupported(g, ".qc");
        }
        os << mnemonic;
        for (Qubit c : g.controls())
            os << " " << wireName(c);
        for (Qubit t : g.targets())
            os << " " << wireName(t);
        os << "\n";
    }
    os << "END\n";
    return os.str();
}

} // namespace qsyn::frontend
