/**
 * @file
 * Parser for the .qc circuit format (used by the "Optimal single-target
 * gate" benchmark suite the paper draws from reference [23]).
 *
 * Format sketch:
 *
 *     .v a b c        # variable (wire) declaration
 *     .i a b          # optional input subset
 *     .o c            # optional output subset
 *     BEGIN
 *     H a
 *     T a b c         # multi-operand T/X/tof = (generalized) Toffoli
 *     T* a            # adjoint of the pi/8 gate
 *     CNOT a b
 *     Z a b c         # multi-operand Z = controlled-Z family
 *     F a b c         # Fredkin (controlled swap)
 *     END
 *
 * Single-operand T is the pi/8 gate; multi-operand T is the Toffoli
 * family with the last operand as target, matching common usage in the
 * benchmark suites.
 */

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qsyn::frontend {

/** Parse .qc text into a circuit. Throws ParseError. */
Circuit parseQc(const std::string &source, const std::string &name = "");

/** Load and parse a .qc file. Throws UserError / ParseError. */
Circuit loadQcFile(const std::string &path);

} // namespace qsyn::frontend
