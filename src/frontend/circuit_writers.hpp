/**
 * @file
 * Writers for the reversible-circuit interchange formats the front end
 * reads: RevLib .real and .qc. Round-tripping circuits through these
 * formats lets qsyn interoperate with the reversible-logic toolchains
 * the paper builds on (RevKit, RevLib, the benchmark suites).
 */

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qsyn::frontend {

/**
 * Serialize an NCT/Fredkin-level circuit as RevLib .real. Accepts X
 * with any number of controls and (controlled) Swap; everything else
 * (Clifford+T gates, rotations, measures) throws UserError since the
 * format has no vocabulary for it.
 */
std::string writeReal(const Circuit &circuit);

/**
 * Serialize as .qc. Accepts the .qc vocabulary: H, X (any controls),
 * Y, Z (any controls), S/S*, T/T*, swap, Fredkin. Parameterized
 * rotations and measures throw UserError.
 */
std::string writeQc(const Circuit &circuit);

} // namespace qsyn::frontend
