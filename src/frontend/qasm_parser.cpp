#include "frontend/qasm_parser.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <numbers>
#include <sstream>

#include "common/errors.hpp"
#include "common/numeric.hpp"
#include "frontend/qasm_lexer.hpp"

namespace qsyn::frontend {

namespace {

/** Arithmetic expression AST for gate parameters. */
struct Expr
{
    enum class Kind
    {
        Number,
        Pi,
        Var,
        Neg,
        Add,
        Sub,
        Mul,
        Div,
        Pow,
        Func
    };

    Kind kind;
    double value = 0.0;
    std::string name; // variable or function name
    std::unique_ptr<Expr> lhs;
    std::unique_ptr<Expr> rhs;
};

using ExprPtr = std::unique_ptr<Expr>;
using Env = std::map<std::string, double>;

double
evalExpr(const Expr &e, const Env &env, int line)
{
    switch (e.kind) {
      case Expr::Kind::Number:
        return e.value;
      case Expr::Kind::Pi:
        return std::numbers::pi;
      case Expr::Kind::Var: {
        auto it = env.find(e.name);
        if (it == env.end())
            throw ParseError("unknown parameter '" + e.name + "'", line,
                             0);
        return it->second;
      }
      case Expr::Kind::Neg:
        return -evalExpr(*e.lhs, env, line);
      case Expr::Kind::Add:
        return evalExpr(*e.lhs, env, line) + evalExpr(*e.rhs, env, line);
      case Expr::Kind::Sub:
        return evalExpr(*e.lhs, env, line) - evalExpr(*e.rhs, env, line);
      case Expr::Kind::Mul:
        return evalExpr(*e.lhs, env, line) * evalExpr(*e.rhs, env, line);
      case Expr::Kind::Div:
        return evalExpr(*e.lhs, env, line) / evalExpr(*e.rhs, env, line);
      case Expr::Kind::Pow:
        return std::pow(evalExpr(*e.lhs, env, line),
                        evalExpr(*e.rhs, env, line));
      case Expr::Kind::Func: {
        double arg = evalExpr(*e.lhs, env, line);
        if (e.name == "sin")
            return std::sin(arg);
        if (e.name == "cos")
            return std::cos(arg);
        if (e.name == "tan")
            return std::tan(arg);
        if (e.name == "exp")
            return std::exp(arg);
        if (e.name == "ln")
            return std::log(arg);
        if (e.name == "sqrt")
            return std::sqrt(arg);
        throw ParseError("unknown function '" + e.name + "'", line, 0);
      }
    }
    throw InternalError("bad expression node", __FILE__, __LINE__);
}

/** A qubit (or cbit) operand: register name plus optional index. */
struct Operand
{
    std::string reg;
    long index = -1; // -1: whole register (broadcast)
    int line = 0;
};

/** One gate application inside a `gate` body or at the top level. */
struct GateCall
{
    std::string name;
    std::vector<ExprPtr> params;
    std::vector<Operand> operands;
    int line = 0;
};

/** A user gate definition. */
struct GateDef
{
    std::vector<std::string> params;
    std::vector<std::string> qubits;
    std::vector<GateCall> body;
    bool opaque = false;
};

struct Register
{
    Qubit offset = 0;
    Qubit size = 0;
};

class Parser
{
  public:
    Parser(const std::string &source, std::string name)
        : tokens_(tokenizeQasm(source)), name_(std::move(name))
    {
    }

    Circuit parse();

  private:
    const Token &peek(size_t ahead = 0) const
    {
        size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
        return tokens_[i];
    }
    const Token &advance() { return tokens_[pos_++]; }
    bool atEnd() const { return peek().kind == TokenKind::EndOfFile; }

    bool
    checkSymbol(const std::string &s) const
    {
        return peek().kind == TokenKind::Symbol && peek().text == s;
    }
    bool
    checkIdent(const std::string &s) const
    {
        return peek().kind == TokenKind::Identifier && peek().text == s;
    }
    void
    expectSymbol(const std::string &s)
    {
        if (!checkSymbol(s)) {
            throw ParseError("expected '" + s + "', got '" + peek().text +
                                 "'",
                             peek().line, peek().column);
        }
        advance();
    }
    std::string
    expectIdent()
    {
        if (peek().kind != TokenKind::Identifier) {
            throw ParseError("expected identifier, got '" + peek().text +
                                 "'",
                             peek().line, peek().column);
        }
        return advance().text;
    }
    long
    expectInteger()
    {
        if (peek().kind != TokenKind::Integer) {
            throw ParseError("expected integer, got '" + peek().text + "'",
                             peek().line, peek().column);
        }
        const Token &tok = advance();
        unsigned long long value = 0;
        if (!parseUnsigned(tok.text, &value) ||
            value > static_cast<unsigned long long>(
                        std::numeric_limits<long>::max())) {
            throw ParseError("integer literal '" + tok.text +
                                 "' is out of range",
                             tok.line, tok.column);
        }
        return static_cast<long>(value);
    }

    ExprPtr parseExpr();
    ExprPtr parseTerm();
    ExprPtr parseFactor();

    Operand parseOperand();
    GateCall parseGateCall();
    void parseGateDef();
    void parseRegisterDecl(bool quantum);
    void parseMeasure();
    void parseBarrier();

    /** Expand one call (after broadcasting) into concrete gates. */
    void emitCall(const GateCall &call, const Env &env,
                  const std::map<std::string, Qubit> &qubit_env,
                  int depth);

    /** Emit a builtin gate; returns false when `name` is not builtin. */
    bool emitBuiltin(const std::string &name, int line,
                     const std::vector<double> &params,
                     const std::vector<Qubit> &qubits);

    Qubit resolveQubit(const Operand &op,
                       const std::map<std::string, Qubit> &qubit_env,
                       long broadcast_index) const;
    Cbit resolveCbit(const Operand &op, long broadcast_index) const;

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    std::string name_;
    std::map<std::string, Register> qregs_;
    std::map<std::string, Register> cregs_;
    std::map<std::string, GateDef> gate_defs_;
    Circuit circuit_{0};
};

ExprPtr
Parser::parseExpr()
{
    ExprPtr lhs = parseTerm();
    while (checkSymbol("+") || checkSymbol("-")) {
        bool add = peek().text == "+";
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = add ? Expr::Kind::Add : Expr::Kind::Sub;
        node->lhs = std::move(lhs);
        node->rhs = parseTerm();
        lhs = std::move(node);
    }
    return lhs;
}

ExprPtr
Parser::parseTerm()
{
    ExprPtr lhs = parseFactor();
    while (checkSymbol("*") || checkSymbol("/")) {
        bool mul = peek().text == "*";
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = mul ? Expr::Kind::Mul : Expr::Kind::Div;
        node->lhs = std::move(lhs);
        node->rhs = parseFactor();
        lhs = std::move(node);
    }
    return lhs;
}

ExprPtr
Parser::parseFactor()
{
    if (checkSymbol("-")) {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::Neg;
        node->lhs = parseFactor();
        return node;
    }
    if (checkSymbol("(")) {
        advance();
        ExprPtr inner = parseExpr();
        expectSymbol(")");
        if (checkSymbol("^")) {
            advance();
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Pow;
            node->lhs = std::move(inner);
            node->rhs = parseFactor();
            return node;
        }
        return inner;
    }
    if (peek().kind == TokenKind::Integer ||
        peek().kind == TokenKind::Real) {
        const Token &tok = advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::Number;
        if (!parseFiniteDouble(tok.text, &node->value)) {
            // e.g. rz(1e999): std::stod would escape as an uncaught
            // std::out_of_range here; diagnose it instead.
            throw ParseError("numeric literal '" + tok.text +
                                 "' is out of range",
                             tok.line, tok.column);
        }
        return node;
    }
    if (peek().kind == TokenKind::Identifier) {
        std::string name = advance().text;
        if (name == "pi") {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Pi;
            return node;
        }
        if (checkSymbol("(")) {
            advance();
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::Func;
            node->name = name;
            node->lhs = parseExpr();
            expectSymbol(")");
            return node;
        }
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::Var;
        node->name = name;
        return node;
    }
    throw ParseError("expected expression, got '" + peek().text + "'",
                     peek().line, peek().column);
}

Operand
Parser::parseOperand()
{
    Operand op;
    op.line = peek().line;
    op.reg = expectIdent();
    if (checkSymbol("[")) {
        advance();
        op.index = expectInteger();
        expectSymbol("]");
    }
    return op;
}

GateCall
Parser::parseGateCall()
{
    GateCall call;
    call.line = peek().line;
    call.name = expectIdent();
    if (checkSymbol("(")) {
        advance();
        if (!checkSymbol(")")) {
            call.params.push_back(parseExpr());
            while (checkSymbol(",")) {
                advance();
                call.params.push_back(parseExpr());
            }
        }
        expectSymbol(")");
    }
    call.operands.push_back(parseOperand());
    while (checkSymbol(",")) {
        advance();
        call.operands.push_back(parseOperand());
    }
    expectSymbol(";");
    return call;
}

void
Parser::parseGateDef()
{
    bool opaque = checkIdent("opaque");
    advance(); // 'gate' or 'opaque'
    std::string name = expectIdent();
    GateDef def;
    def.opaque = opaque;
    if (checkSymbol("(")) {
        advance();
        if (!checkSymbol(")")) {
            def.params.push_back(expectIdent());
            while (checkSymbol(",")) {
                advance();
                def.params.push_back(expectIdent());
            }
        }
        expectSymbol(")");
    }
    def.qubits.push_back(expectIdent());
    while (checkSymbol(",")) {
        advance();
        def.qubits.push_back(expectIdent());
    }
    if (opaque) {
        expectSymbol(";");
    } else {
        expectSymbol("{");
        while (!checkSymbol("}")) {
            if (atEnd())
                throw ParseError("unterminated gate body", peek().line,
                                 peek().column);
            if (checkIdent("barrier")) {
                // Barriers inside gate bodies have no mapping effect.
                advance();
                while (!checkSymbol(";"))
                    advance();
                advance();
                continue;
            }
            def.body.push_back(parseGateCall());
        }
        advance(); // '}'
    }
    gate_defs_[name] = std::move(def);
}

void
Parser::parseRegisterDecl(bool quantum)
{
    advance(); // qreg / creg
    std::string name = expectIdent();
    expectSymbol("[");
    int size_line = peek().line;
    int size_column = peek().column;
    long size = expectInteger();
    expectSymbol("]");
    expectSymbol(";");
    if (size <= 0)
        throw ParseError("register size must be positive", peek().line, 0);
    if (static_cast<unsigned long long>(size) > kMaxRegisterWidth) {
        throw ParseError("register size " + std::to_string(size) +
                             " exceeds the supported maximum of " +
                             std::to_string(kMaxRegisterWidth),
                         size_line, size_column);
    }
    auto &table = quantum ? qregs_ : cregs_;
    if (table.count(name) || (quantum ? cregs_ : qregs_).count(name))
        throw ParseError("duplicate register '" + name + "'", peek().line,
                         0);
    Register reg;
    reg.size = static_cast<Qubit>(size);
    if (quantum) {
        reg.offset = circuit_.numQubits();
        circuit_.resize(circuit_.numQubits() + reg.size);
    } else {
        Cbit total = 0;
        for (const auto &[n, r] : cregs_)
            total += r.size;
        reg.offset = total;
    }
    table[name] = reg;
}

Qubit
Parser::resolveQubit(const Operand &op,
                     const std::map<std::string, Qubit> &qubit_env,
                     long broadcast_index) const
{
    auto env_it = qubit_env.find(op.reg);
    if (env_it != qubit_env.end()) {
        if (op.index >= 0)
            throw ParseError("cannot index a gate-body qubit", op.line, 0);
        return env_it->second;
    }
    auto it = qregs_.find(op.reg);
    if (it == qregs_.end())
        throw ParseError("unknown quantum register '" + op.reg + "'",
                         op.line, 0);
    long index = op.index >= 0 ? op.index : broadcast_index;
    if (index < 0 || index >= static_cast<long>(it->second.size))
        throw ParseError("index out of range for register '" + op.reg +
                             "'",
                         op.line, 0);
    return it->second.offset + static_cast<Qubit>(index);
}

Cbit
Parser::resolveCbit(const Operand &op, long broadcast_index) const
{
    auto it = cregs_.find(op.reg);
    if (it == cregs_.end())
        throw ParseError("unknown classical register '" + op.reg + "'",
                         op.line, 0);
    long index = op.index >= 0 ? op.index : broadcast_index;
    if (index < 0 || index >= static_cast<long>(it->second.size))
        throw ParseError("index out of range for register '" + op.reg +
                             "'",
                         op.line, 0);
    return it->second.offset + static_cast<Cbit>(index);
}

bool
Parser::emitBuiltin(const std::string &name, int line,
                    const std::vector<double> &params,
                    const std::vector<Qubit> &qubits)
{
    auto need = [&](size_t nq, size_t np) {
        if (qubits.size() != nq) {
            throw ParseError("gate '" + name + "' expects " +
                                 std::to_string(nq) + " qubits",
                             line, 0);
        }
        if (params.size() != np) {
            throw ParseError("gate '" + name + "' expects " +
                                 std::to_string(np) + " parameters",
                             line, 0);
        }
    };

    static const std::map<std::string, GateKind> kSimple = {
        {"id", GateKind::I},  {"x", GateKind::X},   {"y", GateKind::Y},
        {"z", GateKind::Z},   {"h", GateKind::H},   {"s", GateKind::S},
        {"sdg", GateKind::Sdg}, {"t", GateKind::T}, {"tdg", GateKind::Tdg}};
    auto simple = kSimple.find(name);
    if (simple != kSimple.end()) {
        need(1, 0);
        circuit_.add(Gate(simple->second, {}, {qubits[0]}));
        return true;
    }

    static const std::map<std::string, GateKind> kRot = {
        {"rx", GateKind::Rx}, {"ry", GateKind::Ry}, {"rz", GateKind::Rz},
        {"p", GateKind::P},   {"u1", GateKind::P}};
    auto rot = kRot.find(name);
    if (rot != kRot.end()) {
        need(1, 1);
        circuit_.add(Gate(rot->second, {}, {qubits[0]}, params[0]));
        return true;
    }

    if (name == "u0") {
        need(1, 1);
        return true; // explicit idle; no unitary action
    }
    if (name == "u2") {
        need(1, 2);
        // u2(phi, lambda) = u3(pi/2, phi, lambda)
        circuit_.add(Gate::rz(qubits[0], params[1]));
        circuit_.add(Gate::ry(qubits[0], std::numbers::pi / 2));
        circuit_.add(Gate::rz(qubits[0], params[0]));
        return true;
    }
    if (name == "u3" || name == "u") {
        need(1, 3);
        // u3(theta, phi, lambda) = Rz(phi) Ry(theta) Rz(lambda), up to
        // global phase.
        circuit_.add(Gate::rz(qubits[0], params[2]));
        circuit_.add(Gate::ry(qubits[0], params[0]));
        circuit_.add(Gate::rz(qubits[0], params[1]));
        return true;
    }

    if (name == "cx" || name == "CX") {
        need(2, 0);
        circuit_.addCnot(qubits[0], qubits[1]);
        return true;
    }
    if (name == "cz") {
        need(2, 0);
        circuit_.addCz(qubits[0], qubits[1]);
        return true;
    }
    if (name == "cy") {
        need(2, 0);
        circuit_.add(Gate(GateKind::Y, {qubits[0]}, {qubits[1]}));
        return true;
    }
    if (name == "ch") {
        need(2, 0);
        circuit_.add(Gate(GateKind::H, {qubits[0]}, {qubits[1]}));
        return true;
    }
    if (name == "crz") {
        need(2, 1);
        circuit_.add(Gate(GateKind::Rz, {qubits[0]}, {qubits[1]},
                          params[0]));
        return true;
    }
    if (name == "cu1" || name == "cp") {
        need(2, 1);
        circuit_.add(Gate(GateKind::P, {qubits[0]}, {qubits[1]},
                          params[0]));
        return true;
    }
    if (name == "ccx") {
        need(3, 0);
        circuit_.addCcx(qubits[0], qubits[1], qubits[2]);
        return true;
    }
    if (name == "swap") {
        need(2, 0);
        circuit_.addSwap(qubits[0], qubits[1]);
        return true;
    }
    if (name == "cswap") {
        need(3, 0);
        circuit_.add(Gate::fredkin(qubits[0], qubits[1], qubits[2]));
        return true;
    }
    return false;
}

void
Parser::emitCall(const GateCall &call, const Env &env,
                 const std::map<std::string, Qubit> &qubit_env, int depth)
{
    if (depth > 64)
        throw ParseError("gate expansion too deep (recursive definition?)",
                         call.line, 0);

    // Broadcasting: any whole-register operand repeats the call across
    // the register; all whole-register operands must have equal size.
    long broadcast = -1;
    for (const Operand &op : call.operands) {
        if (op.index >= 0 || qubit_env.count(op.reg))
            continue;
        auto it = qregs_.find(op.reg);
        if (it == qregs_.end())
            throw ParseError("unknown quantum register '" + op.reg + "'",
                             op.line, 0);
        long size = static_cast<long>(it->second.size);
        if (broadcast == -1)
            broadcast = size;
        else if (broadcast != size)
            throw ParseError("mismatched broadcast register sizes",
                             op.line, 0);
    }

    std::vector<double> params;
    params.reserve(call.params.size());
    for (const ExprPtr &p : call.params)
        params.push_back(evalExpr(*p, env, call.line));

    long reps = broadcast == -1 ? 1 : broadcast;
    for (long rep = 0; rep < reps; ++rep) {
        std::vector<Qubit> qubits;
        qubits.reserve(call.operands.size());
        for (const Operand &op : call.operands)
            qubits.push_back(resolveQubit(op, qubit_env, rep));

        if (emitBuiltin(call.name, call.line, params, qubits))
            continue;

        auto def_it = gate_defs_.find(call.name);
        if (def_it == gate_defs_.end())
            throw ParseError("unknown gate '" + call.name + "'", call.line,
                             0);
        const GateDef &def = def_it->second;
        if (def.opaque)
            throw ParseError("cannot expand opaque gate '" + call.name +
                                 "'",
                             call.line, 0);
        if (def.params.size() != params.size())
            throw ParseError("gate '" + call.name + "' expects " +
                                 std::to_string(def.params.size()) +
                                 " parameters",
                             call.line, 0);
        if (def.qubits.size() != qubits.size())
            throw ParseError("gate '" + call.name + "' expects " +
                                 std::to_string(def.qubits.size()) +
                                 " qubits",
                             call.line, 0);
        Env inner_env;
        for (size_t i = 0; i < def.params.size(); ++i)
            inner_env[def.params[i]] = params[i];
        std::map<std::string, Qubit> inner_qubits;
        for (size_t i = 0; i < def.qubits.size(); ++i)
            inner_qubits[def.qubits[i]] = qubits[i];
        for (const GateCall &inner : def.body)
            emitCall(inner, inner_env, inner_qubits, depth + 1);
    }
}

void
Parser::parseMeasure()
{
    int line = peek().line;
    advance(); // 'measure'
    Operand src = parseOperand();
    expectSymbol("->");
    Operand dst = parseOperand();
    expectSymbol(";");

    if (src.index < 0) {
        auto it = qregs_.find(src.reg);
        if (it == qregs_.end())
            throw ParseError("unknown quantum register '" + src.reg + "'",
                             line, 0);
        for (long i = 0; i < static_cast<long>(it->second.size); ++i) {
            circuit_.add(Gate::measure(resolveQubit(src, {}, i),
                                       resolveCbit(dst, i)));
        }
    } else {
        circuit_.add(Gate::measure(resolveQubit(src, {}, -1),
                                   resolveCbit(dst, dst.index)));
    }
}

void
Parser::parseBarrier()
{
    advance(); // 'barrier'
    std::vector<Qubit> wires;
    Operand op = parseOperand();
    auto add_operand = [&](const Operand &o) {
        if (o.index >= 0) {
            wires.push_back(resolveQubit(o, {}, -1));
        } else {
            auto it = qregs_.find(o.reg);
            if (it == qregs_.end())
                throw ParseError("unknown quantum register '" + o.reg +
                                     "'",
                                 o.line, 0);
            for (Qubit i = 0; i < it->second.size; ++i)
                wires.push_back(it->second.offset + i);
        }
    };
    add_operand(op);
    while (checkSymbol(",")) {
        advance();
        add_operand(parseOperand());
    }
    expectSymbol(";");
    circuit_.add(Gate::barrier(std::move(wires)));
}

Circuit
Parser::parse()
{
    circuit_.setName(name_);

    // Optional version header.
    if (checkIdent("OPENQASM")) {
        advance();
        if (peek().kind != TokenKind::Real &&
            peek().kind != TokenKind::Integer) {
            throw ParseError("expected version number", peek().line,
                             peek().column);
        }
        advance();
        expectSymbol(";");
    }

    while (!atEnd()) {
        if (checkIdent("include")) {
            advance();
            if (peek().kind != TokenKind::String)
                throw ParseError("expected include path string",
                                 peek().line, peek().column);
            std::string path = advance().text;
            expectSymbol(";");
            if (path != "qelib1.inc") {
                throw ParseError("only qelib1.inc includes are supported, "
                                 "got '" +
                                     path + "'",
                                 peek().line, 0);
            }
            continue; // qelib1 gates are built in
        }
        if (checkIdent("qreg")) {
            parseRegisterDecl(/*quantum=*/true);
            continue;
        }
        if (checkIdent("creg")) {
            parseRegisterDecl(/*quantum=*/false);
            continue;
        }
        if (checkIdent("gate") || checkIdent("opaque")) {
            parseGateDef();
            continue;
        }
        if (checkIdent("measure")) {
            parseMeasure();
            continue;
        }
        if (checkIdent("barrier")) {
            parseBarrier();
            continue;
        }
        if (checkIdent("reset")) {
            throw ParseError("'reset' is not supported", peek().line,
                             peek().column);
        }
        if (checkIdent("if")) {
            throw ParseError("classical conditionals are not supported",
                             peek().line, peek().column);
        }
        if (peek().kind != TokenKind::Identifier) {
            throw ParseError("unexpected token '" + peek().text + "'",
                             peek().line, peek().column);
        }
        GateCall call = parseGateCall();
        emitCall(call, {}, {}, 0);
    }
    return std::move(circuit_);
}

} // namespace

Circuit
parseQasm(const std::string &source, const std::string &name)
{
    Parser parser(source, name);
    return parser.parse();
}

Circuit
loadQasmFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UserError("cannot open QASM file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string name = std::filesystem::path(path).stem().string();
    return parseQasm(buffer.str(), name);
}

} // namespace qsyn::frontend
