#include "frontend/pla_parser.hpp"

#include <fstream>
#include <sstream>

#include "common/errors.hpp"
#include "common/numeric.hpp"
#include "common/strings.hpp"

namespace qsyn::frontend {

namespace {

void
parseCubeLine(PlaFile &pla, const std::string &in_part,
              const std::string &out_part, int line_no)
{
    if (static_cast<int>(in_part.size()) != pla.numInputs) {
        throw ParseError("cube input width " +
                             std::to_string(in_part.size()) +
                             " disagrees with .i " +
                             std::to_string(pla.numInputs),
                         line_no, 0);
    }
    if (static_cast<int>(out_part.size()) != pla.numOutputs) {
        throw ParseError("cube output width disagrees with .o", line_no,
                         0);
    }
    PlaCube cube;
    for (int i = 0; i < pla.numInputs; ++i) {
        char c = in_part[static_cast<size_t>(i)];
        if (c == '1') {
            cube.careMask |= 1ull << i;
            cube.polarity |= 1ull << i;
        } else if (c == '0') {
            cube.careMask |= 1ull << i;
        } else if (c != '-' && c != '~' && c != '2') {
            throw ParseError(std::string("bad input literal '") + c + "'",
                             line_no, 0);
        }
    }
    for (int o = 0; o < pla.numOutputs; ++o) {
        char c = out_part[static_cast<size_t>(o)];
        if (c == '1') {
            cube.outputs |= 1ull << o;
        } else if (c != '0' && c != '-' && c != '~') {
            throw ParseError(std::string("bad output literal '") + c + "'",
                             line_no, 0);
        }
    }
    if (cube.outputs != 0)
        pla.cubes.push_back(cube);
}

} // namespace

PlaFile
parsePla(const std::string &source)
{
    PlaFile pla;
    std::istringstream in(source);
    std::string line;
    int line_no = 0;
    bool ended = false;

    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::string text = trim(line);
        if (text.empty())
            continue;
        if (ended)
            throw ParseError("content after .e", line_no, 0);

        if (text[0] == '.') {
            auto fields = splitFields(text);
            std::string dir = toLower(fields[0]);
            if (dir == ".i") {
                if (fields.size() != 2)
                    throw ParseError(".i expects one value", line_no, 0);
                // Raw std::stoi threw out_of_range on huge counts;
                // route them into the same range diagnostic.
                unsigned long long inputs = 0;
                if (!parseUnsigned(fields[1], &inputs) || inputs == 0 ||
                    inputs > 62)
                    throw ParseError("input count must be in [1, 62]",
                                     line_no, 0);
                pla.numInputs = static_cast<int>(inputs);
            } else if (dir == ".o") {
                if (fields.size() != 2)
                    throw ParseError(".o expects one value", line_no, 0);
                unsigned long long outputs = 0;
                if (!parseUnsigned(fields[1], &outputs) ||
                    outputs == 0 || outputs > 62)
                    throw ParseError("output count must be in [1, 62]",
                                     line_no, 0);
                pla.numOutputs = static_cast<int>(outputs);
            } else if (dir == ".type") {
                if (fields.size() == 2 &&
                    (iequals(fields[1], "esop") ||
                     iequals(fields[1], "ex")))
                    pla.isEsop = true;
            } else if (dir == ".ilb") {
                pla.inputNames.assign(fields.begin() + 1, fields.end());
            } else if (dir == ".ob") {
                pla.outputNames.assign(fields.begin() + 1, fields.end());
            } else if (dir == ".e" || dir == ".end") {
                ended = true;
            }
            // .p (cube count) and other directives are ignored.
            continue;
        }

        if (pla.numInputs == 0 || pla.numOutputs == 0) {
            throw ParseError("cube before .i/.o declarations", line_no, 0);
        }
        auto fields = splitFields(text);
        if (fields.size() == 2) {
            parseCubeLine(pla, fields[0], fields[1], line_no);
        } else if (fields.size() == 1 &&
                   static_cast<int>(fields[0].size()) ==
                       pla.numInputs + pla.numOutputs) {
            parseCubeLine(pla, fields[0].substr(0, pla.numInputs),
                          fields[0].substr(pla.numInputs), line_no);
        } else {
            throw ParseError("malformed cube line", line_no, 0);
        }
    }

    if (pla.numInputs == 0 || pla.numOutputs == 0)
        throw ParseError("missing .i/.o declarations", line_no, 0);
    return pla;
}

PlaFile
loadPlaFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UserError("cannot open PLA file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parsePla(buffer.str());
}

} // namespace qsyn::frontend
