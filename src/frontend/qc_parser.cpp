#include "frontend/qc_parser.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/errors.hpp"
#include "common/numeric.hpp"
#include "common/strings.hpp"

namespace qsyn::frontend {

namespace {

class QcParser
{
  public:
    QcParser(const std::string &source, std::string name)
        : source_(source), name_(std::move(name))
    {
    }

    Circuit
    parse()
    {
        std::istringstream in(source_);
        std::string line;
        bool in_body = false;
        bool saw_begin = false;
        while (std::getline(in, line)) {
            ++line_no_;
            std::string text = trim(stripComment(line));
            if (text.empty())
                continue;
            if (text[0] == '.') {
                if (in_body)
                    throw ParseError("directive inside circuit body",
                                     line_no_, 0);
                handleDirective(text);
                continue;
            }
            if (iequals(text, "BEGIN")) {
                ensureCircuit();
                in_body = true;
                saw_begin = true;
                continue;
            }
            if (iequals(text, "END")) {
                in_body = false;
                continue;
            }
            if (!in_body) {
                throw ParseError("gate outside BEGIN/END block", line_no_,
                                 0);
            }
            handleGate(text);
        }
        if (!saw_begin)
            throw ParseError("missing BEGIN block", line_no_, 0);
        circuit_.setName(name_);
        return std::move(circuit_);
    }

  private:
    static std::string
    stripComment(const std::string &line)
    {
        auto pos = line.find('#');
        return pos == std::string::npos ? line : line.substr(0, pos);
    }

    void
    handleDirective(const std::string &text)
    {
        auto fields = splitFields(text);
        const std::string &dir = fields[0];
        if (dir == ".v") {
            for (size_t i = 1; i < fields.size(); ++i) {
                if (vars_.count(fields[i]))
                    throw ParseError("duplicate variable '" + fields[i] +
                                         "'",
                                     line_no_, 0);
                vars_[fields[i]] = static_cast<Qubit>(vars_.size());
            }
        }
        // .i / .o / .c / .ol etc. carry I/O metadata that does not
        // affect the unitary; accepted and ignored.
    }

    void
    ensureCircuit()
    {
        if (vars_.empty())
            throw ParseError("no .v variable declaration before BEGIN",
                             line_no_, 0);
        circuit_ = Circuit(static_cast<Qubit>(vars_.size()), name_);
    }

    Qubit
    wireOf(const std::string &token)
    {
        auto it = vars_.find(token);
        if (it == vars_.end())
            throw ParseError("unknown wire '" + token + "'", line_no_, 0);
        return it->second;
    }

    void
    handleGate(const std::string &text)
    {
        auto fields = splitFields(text);
        std::string op = fields[0];
        std::vector<Qubit> wires;
        for (size_t i = 1; i < fields.size(); ++i)
            wires.push_back(wireOf(fields[i]));
        if (wires.empty())
            throw ParseError("gate '" + op + "' with no operands",
                             line_no_, 0);

        bool adjoint = endsWith(op, "*") || endsWith(op, "'");
        if (adjoint)
            op.pop_back();
        std::string lower = toLower(op);

        auto controls_and_target = [&]() {
            std::vector<Qubit> cs(wires.begin(), wires.end() - 1);
            return std::pair{cs, wires.back()};
        };

        if (lower == "h" || lower == "x" || lower == "not" ||
            lower == "y" || lower == "z" || lower == "s" || lower == "t" ||
            lower == "tof" || lower == "cnot" || lower == "cx") {
            if (wires.size() == 1) {
                GateKind kind;
                if (lower == "h")
                    kind = GateKind::H;
                else if (lower == "x" || lower == "not" || lower == "tof" ||
                         lower == "cnot" || lower == "cx")
                    kind = GateKind::X;
                else if (lower == "y")
                    kind = GateKind::Y;
                else if (lower == "z")
                    kind = GateKind::Z;
                else if (lower == "s")
                    kind = adjoint ? GateKind::Sdg : GateKind::S;
                else
                    kind = adjoint ? GateKind::Tdg : GateKind::T;
                circuit_.add(Gate(kind, {}, {wires[0]}));
                return;
            }
            // Multi-operand X/T/tof/cnot: Toffoli family. Multi-operand
            // Z: controlled-Z family. Multi-operand H/S/Y: controlled
            // versions.
            auto [cs, target] = controls_and_target();
            GateKind kind;
            if (lower == "z")
                kind = GateKind::Z;
            else if (lower == "h")
                kind = GateKind::H;
            else if (lower == "y")
                kind = GateKind::Y;
            else if (lower == "s")
                kind = adjoint ? GateKind::Sdg : GateKind::S;
            else
                kind = GateKind::X;
            circuit_.add(Gate(kind, cs, {target}));
            return;
        }

        if (lower == "swap") {
            if (wires.size() != 2)
                throw ParseError("swap expects two operands", line_no_, 0);
            circuit_.addSwap(wires[0], wires[1]);
            return;
        }
        if (lower == "f" || lower == "fredkin" || lower == "cswap") {
            if (wires.size() < 2)
                throw ParseError("fredkin expects at least two operands",
                                 line_no_, 0);
            std::vector<Qubit> cs(wires.begin(), wires.end() - 2);
            circuit_.add(Gate(GateKind::Swap, cs,
                              {wires[wires.size() - 2], wires.back()}));
            return;
        }

        // tN notation: t1 = NOT, t2 = CNOT, t3 = Toffoli, ...
        if (lower.size() >= 2 && lower[0] == 't' &&
            std::isdigit(static_cast<unsigned char>(lower[1]))) {
            // Raw std::stoul threw out_of_range on arities like
            // t99999999999999999999; parse strictly and bound it.
            unsigned long long n_value = 0;
            if (!parseUnsigned(lower.substr(1), &n_value) ||
                n_value == 0 || n_value > kMaxRegisterWidth) {
                throw ParseError("bad gate arity in '" + op + "'",
                                 line_no_, 0);
            }
            size_t n = static_cast<size_t>(n_value);
            if (n != wires.size())
                throw ParseError("gate '" + op + "' expects " +
                                     std::to_string(n) + " operands",
                                 line_no_, 0);
            auto [cs, target] = controls_and_target();
            circuit_.add(Gate::mcx(cs, target));
            return;
        }

        throw ParseError("unknown gate '" + fields[0] + "'", line_no_, 0);
    }

    const std::string &source_;
    std::string name_;
    int line_no_ = 0;
    std::map<std::string, Qubit> vars_;
    Circuit circuit_{0};
};

} // namespace

Circuit
parseQc(const std::string &source, const std::string &name)
{
    QcParser parser(source, name);
    return parser.parse();
}

Circuit
loadQcFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UserError("cannot open .qc file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string name = std::filesystem::path(path).stem().string();
    return parseQc(buffer.str(), name);
}

} // namespace qsyn::frontend
