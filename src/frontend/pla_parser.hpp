/**
 * @file
 * Parser for PLA cube lists — the classical switching-function input of
 * the paper's front end (Fig. 2 "classical logic" path). A `.type esop`
 * PLA is consumed directly as an exclusive-OR cube list; plain SOP
 * PLAs are accepted when their cubes are disjoint (then OR == XOR) and
 * rejected otherwise.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace qsyn::frontend {

/** One PLA cube: per-input literal states plus per-output flags. */
struct PlaCube
{
    /** Bit i set: input i appears in the cube. */
    std::uint64_t careMask = 0;
    /** Bit i set (and in careMask): input i appears positively. */
    std::uint64_t polarity = 0;
    /** Bit o set: the cube contributes to output o. */
    std::uint64_t outputs = 0;
};

/** A parsed PLA file. */
struct PlaFile
{
    int numInputs = 0;
    int numOutputs = 0;
    bool isEsop = false; ///< declared `.type esop`
    std::vector<PlaCube> cubes;
    std::vector<std::string> inputNames;
    std::vector<std::string> outputNames;
};

/** Parse PLA text. Throws ParseError. */
PlaFile parsePla(const std::string &source);

/** Load and parse a .pla file. Throws UserError / ParseError. */
PlaFile loadPlaFile(const std::string &path);

} // namespace qsyn::frontend
