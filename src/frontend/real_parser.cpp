#include "frontend/real_parser.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/errors.hpp"
#include "common/numeric.hpp"
#include "common/strings.hpp"

namespace qsyn::frontend {

namespace {

class RealParser
{
  public:
    RealParser(const std::string &source, std::string name)
        : source_(source), name_(std::move(name))
    {
    }

    Circuit
    parse()
    {
        std::istringstream in(source_);
        std::string line;
        bool in_body = false;
        while (std::getline(in, line)) {
            ++line_no_;
            std::string text = trim(stripComment(line));
            if (text.empty())
                continue;
            if (text[0] == '.') {
                std::string lower = toLower(splitFields(text)[0]);
                if (lower == ".begin") {
                    beginBody();
                    in_body = true;
                } else if (lower == ".end") {
                    in_body = false;
                } else if (!in_body) {
                    handleDirective(text);
                } else {
                    throw ParseError("directive inside circuit body",
                                     line_no_, 0);
                }
                continue;
            }
            if (!in_body)
                throw ParseError("gate outside .begin/.end", line_no_, 0);
            handleGate(text);
        }
        circuit_.setName(name_);
        return std::move(circuit_);
    }

  private:
    static std::string
    stripComment(const std::string &line)
    {
        auto pos = line.find('#');
        return pos == std::string::npos ? line : line.substr(0, pos);
    }

    void
    handleDirective(const std::string &text)
    {
        auto fields = splitFields(text);
        std::string dir = toLower(fields[0]);
        if (dir == ".numvars") {
            if (fields.size() != 2)
                throw ParseError(".numvars expects one value", line_no_,
                                 0);
            // Raw std::stoul crashed on oversized counts and silently
            // truncated values past the Qubit range; parse strictly.
            unsigned long long value = 0;
            if (!parseUnsigned(fields[1], &value) || value == 0 ||
                value > kMaxRegisterWidth) {
                throw ParseError(
                    "bad .numvars value '" + fields[1] +
                        "' (expected an integer in [1, " +
                        std::to_string(kMaxRegisterWidth) + "])",
                    line_no_, 0);
            }
            num_vars_ = static_cast<Qubit>(value);
        } else if (dir == ".variables") {
            for (size_t i = 1; i < fields.size(); ++i) {
                if (vars_.count(fields[i]))
                    throw ParseError("duplicate variable '" + fields[i] +
                                         "'",
                                     line_no_, 0);
                vars_[fields[i]] = static_cast<Qubit>(vars_.size());
            }
        }
        // .version/.inputs/.outputs/.constants/.garbage/.inputbus/...
        // carry metadata that does not affect the unitary.
    }

    void
    beginBody()
    {
        if (num_vars_ == 0 && !vars_.empty())
            num_vars_ = static_cast<Qubit>(vars_.size());
        if (num_vars_ == 0)
            throw ParseError("missing .numvars / .variables", line_no_, 0);
        if (!vars_.empty() && vars_.size() != num_vars_)
            throw ParseError(".variables count disagrees with .numvars",
                             line_no_, 0);
        if (vars_.empty()) {
            for (Qubit i = 0; i < num_vars_; ++i)
                vars_["x" + std::to_string(i)] = i;
        }
        circuit_ = Circuit(num_vars_, name_);
    }

    /** Resolve a possibly-negated operand; returns (wire, negated). */
    std::pair<Qubit, bool>
    operandOf(std::string token)
    {
        bool negated = false;
        if (!token.empty() && token[0] == '-') {
            negated = true;
            token = token.substr(1);
        }
        auto it = vars_.find(token);
        if (it == vars_.end())
            throw ParseError("unknown variable '" + token + "'", line_no_,
                             0);
        return {it->second, negated};
    }

    void
    handleGate(const std::string &text)
    {
        auto fields = splitFields(text);
        std::string op = toLower(fields[0]);
        if (op.size() < 2)
            throw ParseError("bad gate '" + fields[0] + "'", line_no_, 0);

        char family = op[0];
        unsigned long long arity_value = 0;
        // Strict: "t3x" or an arity overflowing size_t is an error,
        // not a truncated best guess.
        if (!parseUnsigned(op.substr(1), &arity_value) ||
            arity_value == 0 || arity_value > kMaxRegisterWidth) {
            throw ParseError("bad gate arity in '" + fields[0] + "'",
                             line_no_, 0);
        }
        size_t arity = static_cast<size_t>(arity_value);
        if (fields.size() - 1 != arity) {
            throw ParseError("gate '" + fields[0] + "' expects " +
                                 std::to_string(arity) + " operands",
                             line_no_, 0);
        }

        std::vector<Qubit> wires;
        std::vector<Qubit> negated;
        for (size_t i = 1; i < fields.size(); ++i) {
            auto [wire, neg] = operandOf(fields[i]);
            wires.push_back(wire);
            // Only control operands may be negated; for every family
            // the targets are the trailing operands.
            size_t num_targets = family == 'f' ? 2 : 1;
            bool is_control = i - 1 < arity - num_targets;
            if (neg) {
                if (!is_control)
                    throw ParseError("negated target in '" + fields[0] +
                                         "'",
                                     line_no_, 0);
                negated.push_back(wire);
            }
        }

        // Negative controls become X conjugation around the gate.
        for (Qubit q : negated)
            circuit_.addX(q);

        if (family == 't') {
            std::vector<Qubit> cs(wires.begin(), wires.end() - 1);
            circuit_.add(Gate::mcx(cs, wires.back()));
        } else if (family == 'f') {
            if (arity < 2)
                throw ParseError("fredkin needs two targets", line_no_, 0);
            std::vector<Qubit> cs(wires.begin(), wires.end() - 2);
            circuit_.add(Gate(GateKind::Swap, cs,
                              {wires[wires.size() - 2], wires.back()}));
        } else if (family == 'p') {
            // Peres gate p3 a b c = Toffoli(a,b;c) then CNOT(a;b).
            if (arity != 3)
                throw ParseError("only 3-operand Peres gates supported",
                                 line_no_, 0);
            circuit_.addCcx(wires[0], wires[1], wires[2]);
            circuit_.addCnot(wires[0], wires[1]);
        } else {
            throw ParseError("unsupported gate family '" +
                                 std::string(1, family) + "'",
                             line_no_, 0);
        }

        for (Qubit q : negated)
            circuit_.addX(q);
    }

    const std::string &source_;
    std::string name_;
    int line_no_ = 0;
    Qubit num_vars_ = 0;
    std::map<std::string, Qubit> vars_;
    Circuit circuit_{0};
};

} // namespace

Circuit
parseReal(const std::string &source, const std::string &name)
{
    RealParser parser(source, name);
    return parser.parse();
}

Circuit
loadRealFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UserError("cannot open .real file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string name = std::filesystem::path(path).stem().string();
    return parseReal(buffer.str(), name);
}

} // namespace qsyn::frontend
