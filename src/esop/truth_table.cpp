#include "esop/truth_table.hpp"

#include <algorithm>
#include <cctype>

#include "common/errors.hpp"

namespace qsyn::esop {

namespace {

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    throw UserError(std::string("bad hex digit '") + c + "'");
}

} // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars)
{
    QSYN_ASSERT(num_vars >= 0 && num_vars <= 20,
                "truth table limited to 20 variables");
    size_t words = numRows() <= 64 ? 1 : numRows() / 64;
    words_.assign(words, 0);
}

TruthTable
TruthTable::fromHex(const std::string &hex, int num_vars)
{
    std::string digits;
    for (char c : hex) {
        if (c == '#' || c == '_' || std::isspace(static_cast<unsigned char>(c)))
            continue;
        digits += c;
    }
    if (digits.empty())
        throw UserError("empty hex truth table");

    if (num_vars < 0) {
        // Infer: digit count d gives 4d rows; round up to a power of 2.
        std::uint64_t rows = 4 * digits.size();
        num_vars = 2;
        while ((std::uint64_t{1} << num_vars) < rows)
            ++num_vars;
    }
    TruthTable table(num_vars);
    if (4 * digits.size() > table.numRows() * 4) {
        // More digits than rows is only legal when the extras are 0.
    }
    std::uint64_t row = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        int v = hexValue(*it);
        for (int b = 0; b < 4; ++b, ++row) {
            bool bit = (v >> b) & 1;
            if (row < table.numRows()) {
                table.setBit(row, bit);
            } else if (bit) {
                throw UserError("hex table '" + hex +
                                "' wider than 2^" +
                                std::to_string(num_vars) + " rows");
            }
        }
    }
    return table;
}

TruthTable
TruthTable::fromFunction(int num_vars,
                         const std::function<bool(std::uint32_t)> &f)
{
    TruthTable table(num_vars);
    for (std::uint64_t row = 0; row < table.numRows(); ++row)
        table.setBit(row, f(static_cast<std::uint32_t>(row)));
    return table;
}

bool
TruthTable::bit(std::uint64_t row) const
{
    QSYN_ASSERT(row < numRows(), "truth table row out of range");
    return (words_[row / 64] >> (row % 64)) & 1;
}

void
TruthTable::setBit(std::uint64_t row, bool value)
{
    QSYN_ASSERT(row < numRows(), "truth table row out of range");
    std::uint64_t mask = std::uint64_t{1} << (row % 64);
    if (value)
        words_[row / 64] |= mask;
    else
        words_[row / 64] &= ~mask;
}

std::uint64_t
TruthTable::onesCount() const
{
    std::uint64_t count = 0;
    std::uint64_t rows = numRows();
    for (std::uint64_t row = 0; row < rows; ++row)
        count += bit(row) ? 1 : 0;
    return count;
}

bool
TruthTable::isZero() const
{
    return std::all_of(words_.begin(), words_.end(),
                       [](std::uint64_t w) { return w == 0; });
}

bool
TruthTable::operator==(const TruthTable &other) const
{
    if (num_vars_ != other.num_vars_)
        return false;
    if (numRows() >= 64)
        return words_ == other.words_;
    std::uint64_t mask = (std::uint64_t{1} << numRows()) - 1;
    return (words_[0] & mask) == (other.words_[0] & mask);
}

TruthTable &
TruthTable::operator^=(const TruthTable &other)
{
    QSYN_ASSERT(num_vars_ == other.num_vars_, "arity mismatch");
    for (size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= other.words_[i];
    return *this;
}

TruthTable
TruthTable::withInputsFlipped(std::uint64_t flip) const
{
    TruthTable out(num_vars_);
    for (std::uint64_t row = 0; row < numRows(); ++row)
        out.setBit(row, bit(row ^ flip));
    return out;
}

std::string
TruthTable::toHex() const
{
    std::uint64_t rows = numRows();
    size_t digits = rows <= 4 ? 1 : rows / 4;
    std::string out(digits, '0');
    for (std::uint64_t row = 0; row < rows; ++row) {
        if (!bit(row))
            continue;
        size_t digit = row / 4;
        int nibble_bit = static_cast<int>(row % 4);
        char &c = out[digits - 1 - digit];
        int v = hexValue(c) | (1 << nibble_bit);
        c = "0123456789abcdef"[v];
    }
    return out;
}

} // namespace qsyn::esop
