/**
 * @file
 * Single-output Boolean truth tables, the starting point of the
 * classical-logic front end. The "Optimal single-target gate"
 * benchmarks are named by the hexadecimal of exactly this table
 * (e.g. #013f), so tables can be built straight from those names.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace qsyn::esop {

/** Truth table of a Boolean function of up to 20 variables. */
class TruthTable
{
  public:
    /** Constant-0 function of `num_vars` variables. */
    explicit TruthTable(int num_vars);

    /**
     * Build from a hexadecimal string, least-significant hex digit
     * giving rows 0..3 (the benchmark-suite naming convention). The
     * variable count is inferred from the digit count when `num_vars`
     * is negative (4 digits -> 16 rows -> 4 variables).
     */
    static TruthTable fromHex(const std::string &hex, int num_vars = -1);

    /** Build by evaluating `f` on every assignment. */
    static TruthTable fromFunction(
        int num_vars, const std::function<bool(std::uint32_t)> &f);

    int numVars() const { return num_vars_; }
    std::uint64_t numRows() const { return std::uint64_t{1} << num_vars_; }

    bool bit(std::uint64_t row) const;
    void setBit(std::uint64_t row, bool value);

    /** Number of rows where the function is 1. */
    std::uint64_t onesCount() const;

    /** True when the function is constant zero. */
    bool isZero() const;

    bool operator==(const TruthTable &other) const;
    bool operator!=(const TruthTable &other) const
    {
        return !(*this == other);
    }

    /** XOR with another table of equal arity (in place). */
    TruthTable &operator^=(const TruthTable &other);

    /** Table of f(x ^ flip): inputs complemented where `flip` bits are
     *  set (used for fixed-polarity Reed-Muller forms). */
    TruthTable withInputsFlipped(std::uint64_t flip) const;

    /** Hex rendering (most significant digit first). */
    std::string toHex() const;

  private:
    int num_vars_;
    std::vector<std::uint64_t> words_;
};

} // namespace qsyn::esop
