/**
 * @file
 * Exclusive-OR sum-of-products forms: the intermediate representation
 * of the classical front end (Fazel/Thornton style, paper ref. [1]).
 * An ESOP is a set of cubes whose XOR equals the function; each cube
 * maps directly onto one (generalized) Toffoli gate.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "esop/truth_table.hpp"

namespace qsyn::esop {

/** One ESOP cube: conjunction of literals over the care variables. */
struct Cube
{
    std::uint64_t careMask = 0; ///< variables appearing in the cube
    std::uint64_t polarity = 0; ///< positive literals (subset of care)

    bool operator==(const Cube &o) const
    {
        return careMask == o.careMask && polarity == o.polarity;
    }

    /** True when the cube covers the given input assignment. */
    bool
    covers(std::uint64_t assignment) const
    {
        return (assignment & careMask) == (polarity & careMask);
    }

    /** Number of literals. */
    int literalCount() const;

    /** e.g. "x0 !x2 x3" ("1" for the empty cube). */
    std::string toString() const;
};

/** An ESOP expression over `numVars` variables. */
struct EsopForm
{
    int numVars = 0;
    std::vector<Cube> cubes;

    /** Evaluate the XOR of all cubes on an assignment. */
    bool evaluate(std::uint64_t assignment) const;

    /** Expand into a truth table (for verification). */
    TruthTable toTruthTable() const;

    /** Total literal count across cubes. */
    int literalCount() const;
};

/**
 * Local ESOP minimization: repeatedly applies the exact XOR cube
 * identities
 *   C (+) C            = 0            (duplicate cancellation)
 *   xC (+) !xC         = C            (polarity merge)
 *   xC (+) C           = !xC          (literal absorption)
 * until no rule fires. Preserves the function exactly; never increases
 * the cube count.
 */
void minimizeEsop(EsopForm &esop);

} // namespace qsyn::esop
