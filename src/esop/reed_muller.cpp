#include "esop/reed_muller.hpp"

#include <bit>

#include "common/errors.hpp"

namespace qsyn::esop {

std::vector<std::uint64_t>
pprmCoefficients(const TruthTable &table)
{
    int n = table.numVars();
    std::uint64_t rows = table.numRows();
    std::vector<char> coeff(rows);
    for (std::uint64_t r = 0; r < rows; ++r)
        coeff[r] = table.bit(r) ? 1 : 0;

    // GF(2) Mobius transform (in-place butterfly).
    for (int v = 0; v < n; ++v) {
        std::uint64_t bit = std::uint64_t{1} << v;
        for (std::uint64_t r = 0; r < rows; ++r) {
            if (r & bit)
                coeff[r] ^= coeff[r ^ bit];
        }
    }

    std::vector<std::uint64_t> monomials;
    for (std::uint64_t r = 0; r < rows; ++r) {
        if (coeff[r])
            monomials.push_back(r);
    }
    return monomials;
}

EsopForm
pprm(const TruthTable &table)
{
    EsopForm esop;
    esop.numVars = table.numVars();
    for (std::uint64_t m : pprmCoefficients(table)) {
        Cube cube;
        cube.careMask = m;
        cube.polarity = m;
        esop.cubes.push_back(cube);
    }
    return esop;
}

EsopForm
fprm(const TruthTable &table, std::uint64_t polarity_mask)
{
    // Substituting y_i = x_i ^ p_i turns f into g(y) = f(y ^ p); the
    // PPRM of g over y yields literals x_i (p_i = 0) or !x_i (p_i = 1).
    TruthTable flipped = table.withInputsFlipped(polarity_mask);
    EsopForm esop;
    esop.numVars = table.numVars();
    for (std::uint64_t m : pprmCoefficients(flipped)) {
        Cube cube;
        cube.careMask = m;
        cube.polarity = m & ~polarity_mask;
        esop.cubes.push_back(cube);
    }
    return esop;
}

EsopForm
bestFprm(const TruthTable &table)
{
    int n = table.numVars();
    QSYN_ASSERT(n <= 14, "bestFprm limited to 14 variables");
    EsopForm best = fprm(table, 0);
    int best_literals = best.literalCount();
    for (std::uint64_t p = 1; p < (std::uint64_t{1} << n); ++p) {
        EsopForm candidate = fprm(table, p);
        int literals = candidate.literalCount();
        if (candidate.cubes.size() < best.cubes.size() ||
            (candidate.cubes.size() == best.cubes.size() &&
             literals < best_literals)) {
            best = std::move(candidate);
            best_literals = literals;
        }
    }
    return best;
}

EsopForm
synthesizeEsop(const TruthTable &table)
{
    EsopForm esop =
        table.numVars() <= 14 ? bestFprm(table) : pprm(table);
    minimizeEsop(esop);
    return esop;
}

} // namespace qsyn::esop
