/**
 * @file
 * Reed-Muller expansions: the ESOP synthesis engine of the front end.
 *
 * The positive-polarity Reed-Muller (PPRM) form is obtained with the
 * GF(2) Mobius (butterfly) transform; fixed-polarity forms (FPRM)
 * complement a chosen subset of inputs first. `bestFprm` searches all
 * 2^n polarities for the fewest cubes — exact and fast for the
 * benchmark sizes (n <= ~14).
 */

#pragma once

#include "esop/esop_form.hpp"
#include "esop/truth_table.hpp"

namespace qsyn::esop {

/** PPRM coefficients: bit m set means monomial prod_{i in m} x_i. */
std::vector<std::uint64_t> pprmCoefficients(const TruthTable &table);

/** PPRM ESOP (all literals positive). */
EsopForm pprm(const TruthTable &table);

/**
 * Fixed-polarity Reed-Muller form: variable i uses the complemented
 * literal when bit i of `polarity_mask` is set.
 */
EsopForm fprm(const TruthTable &table, std::uint64_t polarity_mask);

/**
 * Exhaustive FPRM search over all 2^n polarities; returns the form
 * with the fewest cubes (ties: fewest literals, then lowest mask).
 * Limited to n <= 14 (n <= 6 in the paper's benchmarks).
 */
EsopForm bestFprm(const TruthTable &table);

/**
 * Front-door ESOP synthesis: bestFprm where feasible (n <= 14, else
 * PPRM), followed by minimizeEsop.
 */
EsopForm synthesizeEsop(const TruthTable &table);

} // namespace qsyn::esop
