#include "esop/esop_form.hpp"

#include <bit>
#include <sstream>

#include "common/errors.hpp"

namespace qsyn::esop {

int
Cube::literalCount() const
{
    return std::popcount(careMask);
}

std::string
Cube::toString() const
{
    if (careMask == 0)
        return "1";
    std::ostringstream os;
    bool first = true;
    for (int i = 0; i < 64; ++i) {
        std::uint64_t bit = std::uint64_t{1} << i;
        if (!(careMask & bit))
            continue;
        if (!first)
            os << " ";
        first = false;
        if (!(polarity & bit))
            os << "!";
        os << "x" << i;
    }
    return os.str();
}

bool
EsopForm::evaluate(std::uint64_t assignment) const
{
    bool value = false;
    for (const Cube &c : cubes)
        value ^= c.covers(assignment);
    return value;
}

TruthTable
EsopForm::toTruthTable() const
{
    TruthTable table(numVars);
    for (std::uint64_t row = 0; row < table.numRows(); ++row)
        table.setBit(row, evaluate(row));
    return table;
}

int
EsopForm::literalCount() const
{
    int total = 0;
    for (const Cube &c : cubes)
        total += c.literalCount();
    return total;
}

void
minimizeEsop(EsopForm &esop)
{
    auto &cubes = esop.cubes;
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < cubes.size() && !changed; ++i) {
            for (size_t j = i + 1; j < cubes.size() && !changed; ++j) {
                Cube &a = cubes[i];
                Cube &b = cubes[j];

                // Duplicate cancellation: C (+) C = 0.
                if (a == b) {
                    cubes.erase(cubes.begin() +
                                static_cast<ptrdiff_t>(j));
                    cubes.erase(cubes.begin() +
                                static_cast<ptrdiff_t>(i));
                    changed = true;
                    break;
                }

                // Polarity merge: same care set, polarity differs in
                // exactly one variable: xC (+) !xC = C.
                if (a.careMask == b.careMask) {
                    std::uint64_t diff =
                        (a.polarity ^ b.polarity) & a.careMask;
                    if (std::popcount(diff) == 1) {
                        a.careMask &= ~diff;
                        a.polarity &= a.careMask;
                        cubes.erase(cubes.begin() +
                                    static_cast<ptrdiff_t>(j));
                        changed = true;
                        break;
                    }
                    continue;
                }

                // Literal absorption: care sets differ in exactly one
                // variable v, agreeing elsewhere: (v-literal)C (+) C
                // = (!v-literal)C.
                std::uint64_t care_diff = a.careMask ^ b.careMask;
                if (std::popcount(care_diff) != 1)
                    continue;
                Cube &wide = (a.careMask & care_diff) ? a : b;
                Cube &narrow = (a.careMask & care_diff) ? b : a;
                std::uint64_t common = narrow.careMask;
                if ((wide.careMask & ~care_diff) != common)
                    continue;
                if ((wide.polarity & common) != (narrow.polarity & common))
                    continue;
                // Flip the distinguished literal of the wide cube and
                // drop the narrow one.
                wide.polarity ^= care_diff;
                if (&narrow == &a) {
                    cubes.erase(cubes.begin() + static_cast<ptrdiff_t>(i));
                } else {
                    cubes.erase(cubes.begin() + static_cast<ptrdiff_t>(j));
                }
                changed = true;
                break;
            }
        }
    }
}

} // namespace qsyn::esop
