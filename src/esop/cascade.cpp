#include "esop/cascade.hpp"

#include <algorithm>
#include <bit>

#include "common/errors.hpp"
#include "esop/reed_muller.hpp"

namespace qsyn::esop {

namespace {

/** Wires whose current polarity flip must change between two cubes. */
std::uint64_t
negativeLiterals(const Cube &cube)
{
    return cube.careMask & ~cube.polarity;
}

/**
 * Greedy nearest-neighbor cube order minimizing the Hamming distance
 * between consecutive negative-literal masks (fewer X toggles).
 */
std::vector<Cube>
orderForSharing(std::vector<Cube> cubes)
{
    std::vector<Cube> ordered;
    ordered.reserve(cubes.size());
    std::uint64_t current = 0;
    while (!cubes.empty()) {
        size_t best = 0;
        int best_distance = 65;
        for (size_t i = 0; i < cubes.size(); ++i) {
            int d = std::popcount(negativeLiterals(cubes[i]) ^ current);
            if (d < best_distance) {
                best_distance = d;
                best = i;
            }
        }
        current = negativeLiterals(cubes[best]);
        ordered.push_back(cubes[best]);
        cubes.erase(cubes.begin() + static_cast<ptrdiff_t>(best));
    }
    return ordered;
}

void
toggleFlips(Circuit &circuit, std::uint64_t &state, std::uint64_t wanted)
{
    std::uint64_t change = state ^ wanted;
    for (int i = 0; i < 64; ++i) {
        if (change & (std::uint64_t{1} << i))
            circuit.addX(static_cast<Qubit>(i));
    }
    state = wanted;
}

} // namespace

void
appendEsopCascade(Circuit &circuit, const EsopForm &esop, Qubit target,
                  const CascadeOptions &options)
{
    QSYN_ASSERT(static_cast<Qubit>(esop.numVars) <= circuit.numQubits(),
                "ESOP wider than the circuit");
    QSYN_ASSERT(target < circuit.numQubits(), "target outside register");
    QSYN_ASSERT(target >= static_cast<Qubit>(esop.numVars),
                "target wire collides with an ESOP variable");

    std::vector<Cube> cubes = esop.cubes;
    if (options.sharePolarity)
        cubes = orderForSharing(std::move(cubes));

    std::uint64_t flip_state = 0;
    for (const Cube &cube : cubes) {
        if (options.sharePolarity) {
            toggleFlips(circuit, flip_state, negativeLiterals(cube));
        } else {
            toggleFlips(circuit, flip_state, 0);
            toggleFlips(circuit, flip_state, negativeLiterals(cube));
        }
        std::vector<Qubit> controls;
        for (int i = 0; i < esop.numVars; ++i) {
            if (cube.careMask & (std::uint64_t{1} << i))
                controls.push_back(static_cast<Qubit>(i));
        }
        circuit.add(Gate::mcx(controls, target));
        if (!options.sharePolarity)
            toggleFlips(circuit, flip_state, 0);
    }
    toggleFlips(circuit, flip_state, 0);
}

Circuit
synthesizeFunction(const TruthTable &table, const CascadeOptions &options)
{
    int n = table.numVars();
    Circuit circuit(static_cast<Qubit>(n) + 1,
                    "f_" + table.toHex());
    EsopForm esop = synthesizeEsop(table);
    appendEsopCascade(circuit, esop, static_cast<Qubit>(n), options);
    return circuit;
}

Circuit
synthesizePla(const frontend::PlaFile &pla, const CascadeOptions &options)
{
    if (!pla.isEsop) {
        // A SOP reads as an ESOP only when no two cubes of the same
        // output intersect.
        for (size_t i = 0; i < pla.cubes.size(); ++i) {
            for (size_t j = i + 1; j < pla.cubes.size(); ++j) {
                const auto &a = pla.cubes[i];
                const auto &b = pla.cubes[j];
                if ((a.outputs & b.outputs) == 0)
                    continue;
                std::uint64_t shared = a.careMask & b.careMask;
                if (((a.polarity ^ b.polarity) & shared) == 0) {
                    throw UserError(
                        "PLA is not .type esop and has overlapping "
                        "cubes; re-express it as an ESOP");
                }
            }
        }
    }

    auto total = static_cast<Qubit>(pla.numInputs + pla.numOutputs);
    Circuit circuit(total, "pla");
    for (int o = 0; o < pla.numOutputs; ++o) {
        EsopForm esop;
        esop.numVars = pla.numInputs;
        for (const auto &cube : pla.cubes) {
            if (cube.outputs & (std::uint64_t{1} << o))
                esop.cubes.push_back(Cube{cube.careMask, cube.polarity});
        }
        minimizeEsop(esop);
        appendEsopCascade(circuit, esop,
                          static_cast<Qubit>(pla.numInputs + o), options);
    }
    return circuit;
}

Circuit
singleTargetGate(const TruthTable &control_function)
{
    Circuit circuit = synthesizeFunction(control_function);
    circuit.setName("st_" + control_function.toHex());
    return circuit;
}

Circuit
singleTargetGateFromHex(const std::string &hex)
{
    return singleTargetGate(TruthTable::fromHex(hex));
}

} // namespace qsyn::esop
