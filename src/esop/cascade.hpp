/**
 * @file
 * ESOP-to-reversible-cascade generation (paper ref. [1]): every ESOP
 * cube becomes one (generalized) Toffoli whose controls are the cube's
 * literals; negative literals are realized by conjugating the control
 * wire with X. The result is the technology-independent reversible
 * cascade that feeds the back end of the compiler (Fig. 2).
 */

#pragma once

#include "esop/esop_form.hpp"
#include "frontend/pla_parser.hpp"
#include "ir/circuit.hpp"

namespace qsyn::esop {

/** Options for cascade generation. */
struct CascadeOptions
{
    /**
     * Order cubes and keep wire polarities sticky so consecutive cubes
     * share their X conjugations instead of undoing and redoing them
     * (the cube-ordering optimization of the ESOP method).
     */
    bool sharePolarity = true;
};

/**
 * Emit the cascade of one ESOP onto wire `target` of a circuit with
 * `num_qubits` wires; ESOP variable i lives on wire i. Appends to
 * `circuit`.
 */
void appendEsopCascade(Circuit &circuit, const EsopForm &esop,
                       Qubit target, const CascadeOptions &options = {});

/**
 * Reversible circuit computing f on a fresh target wire:
 * wires 0..n-1 carry the inputs (restored at the end), wire n receives
 * target XOR f(inputs).
 */
Circuit synthesizeFunction(const TruthTable &table,
                           const CascadeOptions &options = {});

/**
 * Reversible embedding of a (multi-output) PLA: wires 0..i-1 are the
 * inputs, wires i..i+o-1 the outputs (ancillae expected |0>). The PLA
 * is treated as an ESOP cube list; plain SOP PLAs are accepted only
 * when their cubes are pairwise disjoint per output (then OR = XOR),
 * and rejected with UserError otherwise.
 */
Circuit synthesizePla(const frontend::PlaFile &pla,
                      const CascadeOptions &options = {});

/**
 * Single-target gate ST_f: wires 0..n-1 are the controls of the
 * Boolean control function f, wire n the target. This regenerates the
 * paper's "Optimal single-target gate" benchmark family from its hex
 * truth-table names.
 */
Circuit singleTargetGate(const TruthTable &control_function);

/** singleTargetGate from the benchmark's hex name (e.g. "013f"). */
Circuit singleTargetGateFromHex(const std::string &hex);

} // namespace qsyn::esop
