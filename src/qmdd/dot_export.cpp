#include "qmdd/dot_export.hpp"

#include <cmath>
#include <map>
#include <sstream>

namespace qsyn::dd {

namespace {

std::string
weightLabel(const Cplx &w)
{
    std::ostringstream os;
    os.precision(4);
    if (std::abs(w.imag()) < 1e-12) {
        os << w.real();
    } else if (std::abs(w.real()) < 1e-12) {
        os << w.imag() << "i";
    } else {
        os << w.real() << (w.imag() >= 0 ? "+" : "") << w.imag() << "i";
    }
    return os.str();
}

} // namespace

std::string
toDot(Package &pkg, const Edge &e, const DotOptions &options)
{
    (void)pkg;
    std::ostringstream os;
    os << "digraph qmdd {\n";
    os << "  rankdir=TB;\n";
    os << "  node [shape=circle];\n";
    if (!options.title.empty())
        os << "  label=\"" << options.title << "\";\n";

    std::map<const Node *, int> ids;
    std::vector<const Node *> stack;
    auto id_of = [&](const Node *n) {
        auto it = ids.find(n);
        if (it != ids.end())
            return it->second;
        int id = static_cast<int>(ids.size());
        ids.emplace(n, id);
        stack.push_back(n);
        return id;
    };

    // Root pseudo-edge.
    os << "  root [shape=point];\n";
    os << "  root -> n" << id_of(e.node);
    if (options.showWeights)
        os << " [label=\"" << weightLabel(*e.weight) << "\"]";
    os << ";\n";

    size_t cursor = 0;
    while (cursor < stack.size()) {
        const Node *n = stack[cursor++];
        if (isTerminal(n)) {
            os << "  n" << ids[n]
               << " [shape=box, label=\"1 (I)\"];\n";
            continue;
        }
        os << "  n" << ids[n] << " [label=\"x" << n->var << "\"];\n";
        static const char *kQuadrant[] = {"U00", "U01", "U10", "U11"};
        for (int i = 0; i < 4; ++i) {
            const Edge &child = n->e[i];
            if (approxZero(*child.weight))
                continue; // zero edges elided, as in Fig. 1
            os << "  n" << ids[n] << " -> n" << id_of(child.node)
               << " [label=\"" << kQuadrant[i];
            if (options.showWeights && !approxOne(*child.weight))
                os << " (" << weightLabel(*child.weight) << ")";
            os << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace qsyn::dd
