#include "qmdd/package.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "obs/obs.hpp"

namespace qsyn::dd {

namespace {

/** Power-of-two sizes of the hash structures. */
constexpr size_t kUniqueBuckets = size_t{1} << 19;
constexpr size_t kMulCacheSize = size_t{1} << 19;
constexpr size_t kAddCacheSize = size_t{1} << 19;
constexpr size_t kCtCacheSize = size_t{1} << 14;

size_t
hashCombine(size_t seed, size_t v)
{
    return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

size_t
hashPtr(const void *p)
{
    auto v = reinterpret_cast<std::uintptr_t>(p);
    // Pointer values are alignment-structured; mix them.
    return static_cast<size_t>((v >> 4) * 0x9e3779b97f4a7c15ull);
}

size_t
hashEdge(const Edge &e)
{
    return hashCombine(hashPtr(e.node), hashPtr(e.weight));
}

} // namespace

size_t
Package::hashNode(std::int32_t var, const std::array<Edge, 4> &e)
{
    size_t h = static_cast<size_t>(var) * 0xc2b2ae3d27d4eb4full;
    for (const Edge &child : e)
        h = hashCombine(h, hashEdge(child));
    return h;
}

Package::Package()
    : unique_buckets_(kUniqueBuckets, nullptr),
      unique_mask_(kUniqueBuckets - 1),
      mul_cache_(kMulCacheSize),
      add_cache_(kAddCacheSize),
      ct_cache_(kCtCacheSize)
{
    terminal_.var = kTerminalVar;
}

Edge
Package::zeroEdge()
{
    return Edge{&terminal_, ctab_.zero()};
}

Edge
Package::identityEdge()
{
    return Edge{&terminal_, ctab_.one()};
}

Edge
Package::terminalEdge(const Cplx &w)
{
    const Cplx *cw = ctab_.lookup(w);
    return Edge{&terminal_, cw};
}

Node *
Package::allocNode()
{
    Node *n;
    if (free_list_ != nullptr) {
        n = free_list_;
        free_list_ = n->next;
        n->next = nullptr;
        n->mark = 0;
    } else {
        arena_.emplace_back();
        n = &arena_.back();
    }
    stats_.peakNodes = std::max(stats_.peakNodes, unique_size_ + 1);
    return n;
}

Edge
Package::makeNode(std::int32_t var, const std::array<Edge, 4> &edges)
{
    std::array<Edge, 4> e = edges;
    // Zero-edge canonicalization: weight zero always points at terminal.
    for (Edge &child : e) {
        if (child.weight == ctab_.zero()) {
            child.node = &terminal_;
        } else {
            QSYN_ASSERT(isTerminal(child.node) || child.node->var > var,
                        "QMDD child variable out of order");
        }
    }

    // Identity-skip reduction (also catches the all-zero node).
    if (e[1].weight == ctab_.zero() && e[2].weight == ctab_.zero() &&
        e[0] == e[3]) {
        return e[0];
    }

    // Normalize by the leftmost edge of maximal magnitude.
    double max_mag = 0.0;
    for (const Edge &child : e)
        max_mag = std::max(max_mag, std::abs(*child.weight));
    QSYN_ASSERT(max_mag > 0.0, "all-zero node escaped reduction");
    int norm_idx = 0;
    while (std::abs(*e[norm_idx].weight) < max_mag - kWeightEps)
        ++norm_idx;
    Cplx norm = *e[norm_idx].weight;
    for (int i = 0; i < 4; ++i) {
        if (e[i].weight == ctab_.zero())
            continue;
        if (i == norm_idx) {
            e[i].weight = ctab_.one();
        } else {
            e[i].weight = ctab_.lookup(*e[i].weight / norm);
            if (e[i].weight == ctab_.zero())
                e[i].node = &terminal_;
        }
    }

    ++stats_.uniqueLookups;
    size_t bucket = hashNode(var, e) & unique_mask_;
    for (Node *n = unique_buckets_[bucket]; n != nullptr; n = n->next) {
        if (n->var == var && n->e == e) {
            ++stats_.uniqueHits;
            return Edge{n, ctab_.lookup(norm)};
        }
    }
    Node *n = allocNode();
    n->var = var;
    n->e = e;
    n->next = unique_buckets_[bucket];
    unique_buckets_[bucket] = n;
    ++unique_size_;
    return Edge{n, ctab_.lookup(norm)};
}

Edge
Package::scaled(const Edge &e, const Cplx &factor)
{
    if (e.weight == ctab_.zero())
        return zeroEdge();
    const Cplx *w = ctab_.lookup(*e.weight * factor);
    if (w == ctab_.zero())
        return zeroEdge();
    return Edge{e.node, w};
}

Edge
Package::child(const Edge &x, int r, int c, std::int32_t var)
{
    if (isTerminal(x.node) || x.node->var > var) {
        // Identity-skip: diagonal continues, off-diagonal is zero.
        return r == c ? x : zeroEdge();
    }
    QSYN_ASSERT(x.node->var == var, "child() level mismatch");
    Edge stored = x.node->e[2 * r + c];
    if (stored.weight == ctab_.zero())
        return zeroEdge();
    if (x.weight == ctab_.one())
        return stored;
    return Edge{stored.node, ctab_.lookup(*x.weight * *stored.weight)};
}

Edge
Package::multiply(const Edge &a, const Edge &b)
{
    if (a.weight == ctab_.zero() || b.weight == ctab_.zero())
        return zeroEdge();
    Edge r = mulNodes(a.node, b.node);
    return scaled(r, *a.weight * *b.weight);
}

Edge
Package::mulNodes(Node *x, Node *y)
{
    ++stats_.multiplies;
    if (isTerminal(x))
        return Edge{y, ctab_.one()};
    if (isTerminal(y))
        return Edge{x, ctab_.one()};

    size_t slot = hashCombine(hashPtr(x), hashPtr(y)) & (kMulCacheSize - 1);
    MulSlot &cache = mul_cache_[slot];
    ++stats_.computeLookups;
    if (cache.a == x && cache.b == y) {
        ++stats_.computeHits;
        return cache.result;
    }

    std::int32_t top = std::min(x->var, y->var);
    Edge ex{x, ctab_.one()};
    Edge ey{y, ctab_.one()};
    std::array<Edge, 4> res;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            Edge p0 = multiply(child(ex, i, 0, top), child(ey, 0, j, top));
            Edge p1 = multiply(child(ex, i, 1, top), child(ey, 1, j, top));
            res[2 * i + j] = add(p0, p1);
        }
    }
    Edge result = makeNode(top, res);
    cache = MulSlot{x, y, result};
    return result;
}

Edge
Package::add(const Edge &a, const Edge &b)
{
    ++stats_.additions;
    if (a.weight == ctab_.zero())
        return b;
    if (b.weight == ctab_.zero())
        return a;
    if (a.node == b.node) {
        const Cplx *w = ctab_.lookup(*a.weight + *b.weight);
        if (w == ctab_.zero())
            return zeroEdge();
        return Edge{a.node, w};
    }

    // Addition is commutative; canonicalize the cache key order.
    Edge ka = a, kb = b;
    if (std::make_pair(kb.node, kb.weight) <
        std::make_pair(ka.node, ka.weight))
        std::swap(ka, kb);
    size_t slot =
        hashCombine(hashEdge(ka), hashEdge(kb)) & (kAddCacheSize - 1);
    AddSlot &cache = add_cache_[slot];
    ++stats_.computeLookups;
    if (cache.valid && cache.a == ka && cache.b == kb) {
        ++stats_.computeHits;
        return cache.result;
    }

    std::int32_t top = kTerminalVar;
    if (!isTerminal(a.node))
        top = a.node->var;
    if (!isTerminal(b.node))
        top = top == kTerminalVar ? b.node->var
                                  : std::min(top, b.node->var);
    QSYN_ASSERT(top != kTerminalVar,
                "add of two terminals must hit the same-node case");

    std::array<Edge, 4> res;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            res[2 * i + j] =
                add(child(a, i, j, top), child(b, i, j, top));
        }
    }
    Edge result = makeNode(top, res);
    cache = AddSlot{ka, kb, result, true};
    return result;
}

Edge
Package::conjugateTranspose(const Edge &a)
{
    Edge r;
    if (isTerminal(a.node)) {
        r = identityEdge();
    } else {
        size_t slot = hashPtr(a.node) & (kCtCacheSize - 1);
        CtSlot &cache = ct_cache_[slot];
        ++stats_.computeLookups;
        if (cache.a == a.node) {
            ++stats_.computeHits;
            r = cache.result;
        } else {
            std::array<Edge, 4> res;
            for (int i = 0; i < 2; ++i) {
                for (int j = 0; j < 2; ++j) {
                    res[2 * i + j] =
                        conjugateTranspose(a.node->e[2 * j + i]);
                }
            }
            r = makeNode(a.node->var, res);
            cache = CtSlot{a.node, r};
        }
    }
    return scaled(r, std::conj(*a.weight));
}

Edge
Package::makeGateDD(const Mat2 &u, const std::vector<Qubit> &controls,
                    Qubit target)
{
    std::array<Edge, 4> em;
    for (int i = 0; i < 4; ++i)
        em[i] = terminalEdge(u.e[i]);

    std::vector<Qubit> sorted = controls;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());

    // Controls below the target (larger var): fold into the quadrant
    // edges before the target node is built. When such a control is 0
    // the whole gate is inactive: diagonal quadrants fall back to the
    // identity, off-diagonal quadrants to zero.
    size_t idx = 0;
    while (idx < sorted.size() && sorted[idx] > target) {
        auto var = static_cast<std::int32_t>(sorted[idx]);
        for (int i = 0; i < 2; ++i) {
            for (int j = 0; j < 2; ++j) {
                Edge inactive = i == j ? identityEdge() : zeroEdge();
                em[2 * i + j] = makeNode(
                    var, {inactive, zeroEdge(), zeroEdge(), em[2 * i + j]});
            }
        }
        ++idx;
    }

    Edge e = makeNode(static_cast<std::int32_t>(target), em);

    // Controls above the target, bottom-up.
    while (idx < sorted.size()) {
        QSYN_ASSERT(sorted[idx] < target, "control equals target");
        e = makeNode(static_cast<std::int32_t>(sorted[idx]),
                     {identityEdge(), zeroEdge(), zeroEdge(), e});
        ++idx;
    }
    return e;
}

Edge
Package::makeSwapDD(const std::vector<Qubit> &controls, Qubit a, Qubit b)
{
    // (c-)SWAP(a,b) = CNOT(b,a) . MCX(controls + {a}, b) . CNOT(b,a)
    Mat2 x = baseMatrix(GateKind::X);
    Edge outer = makeGateDD(x, {b}, a);
    std::vector<Qubit> cs = controls;
    cs.push_back(a);
    Edge inner = makeGateDD(x, cs, b);
    return multiply(outer, multiply(inner, outer));
}

Edge
Package::gateDD(const Gate &gate)
{
    switch (gate.kind()) {
      case GateKind::I:
      case GateKind::Barrier:
        return identityEdge();
      case GateKind::Swap:
        return makeSwapDD(gate.controls(), gate.targets()[0],
                          gate.targets()[1]);
      case GateKind::Measure:
        throw InternalError("cannot build a DD for a measurement",
                            __FILE__, __LINE__);
      default:
        return makeGateDD(gate.baseMatrix(), gate.controls(),
                          gate.target());
    }
}

Edge
Package::buildCircuit(const Circuit &circuit)
{
    Edge e = identityEdge();
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Barrier)
            continue;
        e = multiply(gateDD(g), e);
        if (unique_size_ > gc_threshold_)
            collectGarbage({e});
    }
    return e;
}

Edge
Package::makeProjector(const std::vector<Qubit> &zero_wires)
{
    std::vector<Qubit> sorted = zero_wires;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    Edge e = identityEdge();
    for (Qubit v : sorted) {
        e = makeNode(static_cast<std::int32_t>(v),
                     {e, zeroEdge(), zeroEdge(), zeroEdge()});
    }
    return e;
}

Cplx
Package::getEntry(const Edge &e, std::uint64_t row, std::uint64_t col,
                  int num_qubits)
{
    Cplx w = *e.weight;
    const Node *p = e.node;
    for (int v = 0; v < num_qubits; ++v) {
        int rb = static_cast<int>((row >> (num_qubits - 1 - v)) & 1);
        int cb = static_cast<int>((col >> (num_qubits - 1 - v)) & 1);
        if (isTerminal(p) || p->var > v) {
            if (rb != cb)
                return Cplx(0, 0);
            continue;
        }
        const Edge &next = p->e[2 * rb + cb];
        if (next.weight == ctab_.zero())
            return Cplx(0, 0);
        w *= *next.weight;
        p = next.node;
    }
    QSYN_ASSERT(isTerminal(p), "edge deeper than the qubit context");
    return w;
}

size_t
Package::countNodes(const Edge &e)
{
    std::vector<const Node *> stack{e.node};
    std::unordered_map<const Node *, bool> seen;
    size_t count = 0;
    while (!stack.empty()) {
        const Node *n = stack.back();
        stack.pop_back();
        if (isTerminal(n) || seen.count(n))
            continue;
        seen.emplace(n, true);
        ++count;
        for (const Edge &c : n->e) {
            if (c.node != nullptr)
                stack.push_back(c.node);
        }
    }
    return count;
}

double
Package::maxMagnitude(const Edge &e)
{
    if (e.weight == ctab_.zero())
        return 0.0;
    // Max |entry| = max over paths of the product of |weight|s, which
    // decomposes level by level into a per-node maximum.
    struct Rec
    {
        Package *pkg;
        double
        operator()(const Node *n)
        {
            if (isTerminal(n))
                return 1.0;
            auto it = pkg->mag_cache_.find(n);
            if (it != pkg->mag_cache_.end())
                return it->second;
            double m = 0.0;
            for (const Edge &c : n->e) {
                if (c.weight == pkg->ctab_.zero())
                    continue;
                m = std::max(m, std::abs(*c.weight) * (*this)(c.node));
            }
            pkg->mag_cache_.emplace(n, m);
            return m;
        }
    } rec{this};
    return std::abs(*e.weight) * rec(e.node);
}

bool
Package::approxEqualEdges(const Edge &a, const Edge &b, double eps)
{
    if (a == b)
        return true;
    Edge diff = add(a, scaled(b, Cplx(-1, 0)));
    return maxMagnitude(diff) < eps;
}

void
Package::markReachable(Node *n, std::uint32_t epoch)
{
    if (isTerminal(n) || n->mark == epoch)
        return;
    n->mark = epoch;
    for (Edge &c : n->e) {
        if (c.node != nullptr)
            markReachable(c.node, epoch);
    }
}

void
Package::collectGarbage(const std::vector<Edge> &roots)
{
    ++stats_.gcRuns;
    ++mark_epoch_;
    for (const Edge &r : roots) {
        if (r.node != nullptr)
            markReachable(r.node, mark_epoch_);
    }
    for (Node *&bucket : unique_buckets_) {
        Node **link = &bucket;
        while (*link != nullptr) {
            Node *n = *link;
            if (n->mark != mark_epoch_) {
                *link = n->next;
                n->next = free_list_;
                free_list_ = n;
                --unique_size_;
            } else {
                link = &n->next;
            }
        }
    }
    std::fill(mul_cache_.begin(), mul_cache_.end(), MulSlot{});
    std::fill(add_cache_.begin(), add_cache_.end(), AddSlot{});
    std::fill(ct_cache_.begin(), ct_cache_.end(), CtSlot{});
    mag_cache_.clear();
    // If the survivors alone still exceed the threshold, raise it so we
    // do not thrash in a GC loop.
    if (unique_size_ > gc_threshold_ / 2)
        gc_threshold_ *= 2;
}

void
Package::publishMetrics(const char *prefix) const
{
    obs::Sink *s = obs::sink();
    if (s == nullptr)
        return;
    obs::MetricsRegistry &m = s->metrics();
    std::string p(prefix);
    m.setGauge(p + ".live_nodes", static_cast<double>(unique_size_));
    m.setGauge(p + ".peak_nodes", static_cast<double>(stats_.peakNodes));
    m.setGauge(p + ".unique_lookups",
               static_cast<double>(stats_.uniqueLookups));
    m.setGauge(p + ".unique_hits", static_cast<double>(stats_.uniqueHits));
    m.setGauge(p + ".unique_hit_rate", stats_.uniqueHitRate());
    m.setGauge(p + ".compute_lookups",
               static_cast<double>(stats_.computeLookups));
    m.setGauge(p + ".compute_hits",
               static_cast<double>(stats_.computeHits));
    m.setGauge(p + ".compute_hit_rate", stats_.computeHitRate());
    m.setGauge(p + ".multiplies", static_cast<double>(stats_.multiplies));
    m.setGauge(p + ".additions", static_cast<double>(stats_.additions));
    m.setGauge(p + ".gc_runs", static_cast<double>(stats_.gcRuns));
}

} // namespace qsyn::dd
