#include "qmdd/package.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "obs/obs.hpp"

namespace qsyn::dd {

namespace {

/** Unique-table resize trigger: grow when live nodes would exceed this
 *  percentage of the slot count. Linear probing stays short well below
 *  70%, and growing at a fixed fraction keeps inserts amortized O(1). */
constexpr size_t kMaxLoadPercent = 65;

/** collectGarbage halves the table when survivors use less than
 *  1/kShrinkDivisor of the slots, so a long-lived worker that saw one
 *  huge circuit does not pin a huge table forever. */
constexpr size_t kShrinkDivisor = 8;

/** Floor for setGcThreshold / the GC shrink path: below this the
 *  collector would run every few gates and thrash. */
constexpr size_t kMinGcThreshold = 1024;

size_t
nextPowerOfTwo(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

size_t
hashCombine(size_t seed, size_t v)
{
    return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

size_t
hashPtr(const void *p)
{
    auto v = reinterpret_cast<std::uintptr_t>(p);
    // Pointer values are alignment-structured; mix them.
    return static_cast<size_t>((v >> 4) * 0x9e3779b97f4a7c15ull);
}

size_t
hashEdge(const Edge &e)
{
    return hashCombine(hashPtr(e.node), hashPtr(e.weight));
}

} // namespace

size_t
Package::hashNode(std::int32_t var, const std::array<Edge, 4> &e)
{
    size_t h = static_cast<size_t>(var) * 0xc2b2ae3d27d4eb4full;
    for (const Edge &child : e)
        h = hashCombine(h, hashEdge(child));
    return h;
}

Package::Package() : Package(PackageConfig{})
{
}

Package::Package(const PackageConfig &config)
    : unique_slots_(nextPowerOfTwo(std::max<size_t>(
                        config.initialUniqueCapacity, 64)),
                    nullptr),
      unique_mask_(unique_slots_.size() - 1),
      min_unique_capacity_(unique_slots_.size()),
      mul_cache_(2 * nextPowerOfTwo(std::max<size_t>(
                         config.mulCacheSets, 16))),
      add_cache_(2 * nextPowerOfTwo(std::max<size_t>(
                         config.addCacheSets, 16))),
      ct_cache_(2 * nextPowerOfTwo(std::max<size_t>(
                        config.ctCacheSets, 16))),
      mul_set_mask_(mul_cache_.size() / 2 - 1),
      add_set_mask_(add_cache_.size() / 2 - 1),
      ct_set_mask_(ct_cache_.size() / 2 - 1),
      gc_threshold_(std::max(config.gcThreshold, kMinGcThreshold)),
      min_gc_threshold_(gc_threshold_)
{
    terminal_.var = kTerminalVar;
}

Edge
Package::zeroEdge()
{
    return Edge{&terminal_, ctab_.zero()};
}

Edge
Package::identityEdge()
{
    return Edge{&terminal_, ctab_.one()};
}

Edge
Package::terminalEdge(const Cplx &w)
{
    const Cplx *cw = ctab_.lookup(w);
    return Edge{&terminal_, cw};
}

Node *
Package::allocNode()
{
    Node *n;
    if (free_list_ != nullptr) {
        n = free_list_;
        free_list_ = n->next;
        --free_count_;
        n->next = nullptr;
        n->mark = 0;
    } else {
        arena_.emplace_back();
        n = &arena_.back();
    }
    return n;
}

void
Package::rehashUnique(size_t capacity)
{
    std::vector<Node *> slots(capacity, nullptr);
    size_t mask = capacity - 1;
    for (Node *n : unique_slots_) {
        if (n == nullptr)
            continue;
        size_t idx = n->hash & mask;
        while (slots[idx] != nullptr)
            idx = (idx + 1) & mask;
        slots[idx] = n;
    }
    unique_slots_ = std::move(slots);
    unique_mask_ = mask;
}

Edge
Package::makeNode(std::int32_t var, const std::array<Edge, 4> &edges)
{
    std::array<Edge, 4> e = edges;
    // Zero-edge canonicalization: weight zero always points at terminal.
    for (Edge &child : e) {
        if (child.weight == ctab_.zero()) {
            child.node = &terminal_;
        } else {
            QSYN_ASSERT(isTerminal(child.node) || child.node->var > var,
                        "QMDD child variable out of order");
        }
    }

    // Identity-skip reduction (also catches the all-zero node).
    if (e[1].weight == ctab_.zero() && e[2].weight == ctab_.zero() &&
        e[0] == e[3]) {
        return e[0];
    }

    // Normalize by the leftmost edge of maximal magnitude. Squared
    // magnitudes avoid a hypot per child; the pivot tolerance is
    // squared to match (all magnitudes here are bounded by ~1, so the
    // square cannot overflow or lose the eps).
    std::array<double, 4> mags2;
    double max2 = 0.0;
    for (int i = 0; i < 4; ++i) {
        mags2[i] = e[i].weight == ctab_.zero()
                       ? 0.0
                       : std::norm(*e[i].weight);
        max2 = std::max(max2, mags2[i]);
    }
    QSYN_ASSERT(max2 > 0.0, "all-zero node escaped reduction");
    const double max_mag = std::sqrt(max2);
    const double thr =
        max_mag > kWeightEps
            ? (max_mag - kWeightEps) * (max_mag - kWeightEps)
            : 0.0;
    int norm_idx = 0;
    while (mags2[norm_idx] < thr)
        ++norm_idx;
    const Cplx *norm_ptr = e[norm_idx].weight;
    if (norm_ptr != ctab_.one()) {
        // Pivot weight 1 (the common case: children of canonical nodes
        // are already normalized) leaves every ratio untouched.
        const Cplx norm = *norm_ptr;
        for (int i = 0; i < 4; ++i) {
            if (e[i].weight == ctab_.zero())
                continue;
            if (e[i].weight == norm_ptr) {
                // Covers norm_idx itself and any sibling sharing the
                // same interned weight: the ratio is exactly 1, no
                // division or table lookup needed.
                e[i].weight = ctab_.one();
            } else {
                e[i].weight = ctab_.lookup(*e[i].weight / norm);
                if (e[i].weight == ctab_.zero())
                    e[i].node = &terminal_;
            }
        }
    }

    ++stats_.uniqueLookups;
    // Grow before probing so the insert position below stays valid.
    if ((unique_size_ + 1) * 100 >
        unique_slots_.size() * kMaxLoadPercent) {
        rehashUnique(unique_slots_.size() * 2);
        ++stats_.uniqueRehashes;
    }
    size_t h = hashNode(var, e);
    size_t idx = h & unique_mask_;
    while (Node *n = unique_slots_[idx]) {
        if (n->hash == h && n->var == var && n->e == e) {
            ++stats_.uniqueHits;
            return Edge{n, norm_ptr};
        }
        idx = (idx + 1) & unique_mask_;
    }
    Node *n = allocNode();
    n->var = var;
    n->e = e;
    n->hash = h;
    unique_slots_[idx] = n;
    ++unique_size_;
    // Peak is a *live*-node high-water mark: tracked here (the only
    // place the live count grows) so unique-table hits and free-list
    // recycling cannot inflate it.
    stats_.peakNodes = std::max(stats_.peakNodes, unique_size_);
    return Edge{n, norm_ptr};
}

Edge
Package::scaled(const Edge &e, const Cplx &factor)
{
    if (e.weight == ctab_.zero())
        return zeroEdge();
    const Cplx *w = ctab_.lookup(*e.weight * factor);
    if (w == ctab_.zero())
        return zeroEdge();
    return Edge{e.node, w};
}

Edge
Package::child(const Edge &x, int r, int c, std::int32_t var)
{
    if (isTerminal(x.node) || x.node->var > var) {
        // Identity-skip: diagonal continues, off-diagonal is zero.
        return r == c ? x : zeroEdge();
    }
    QSYN_ASSERT(x.node->var == var, "child() level mismatch");
    Edge stored = x.node->e[2 * r + c];
    if (stored.weight == ctab_.zero())
        return zeroEdge();
    if (x.weight == ctab_.one())
        return stored;
    if (stored.weight == ctab_.one())
        return Edge{stored.node, x.weight};
    return Edge{stored.node, ctab_.lookup(*x.weight * *stored.weight)};
}

const Cplx *
Package::mulWeights(const Cplx *a, const Cplx *b)
{
    // Normalization makes 1 by far the most common weight, and zero
    // edges are pruned before multiplication, so both fast paths fire
    // constantly; the interning lookup is the slow path.
    if (a == ctab_.one())
        return b;
    if (b == ctab_.one())
        return a;
    if (a == ctab_.zero() || b == ctab_.zero())
        return ctab_.zero();
    return ctab_.lookup(*a * *b);
}

Edge
Package::multiply(const Edge &a, const Edge &b)
{
    if (a.weight == ctab_.zero() || b.weight == ctab_.zero())
        return zeroEdge();
    Edge r = mulNodes(a.node, b.node);
    if (r.weight == ctab_.zero())
        return zeroEdge();
    const Cplx *w = mulWeights(mulWeights(a.weight, b.weight), r.weight);
    if (w == ctab_.zero())
        return zeroEdge();
    return Edge{r.node, w};
}

Edge
Package::mulNodes(Node *x, Node *y)
{
    ++stats_.multiplies;
    if (isTerminal(x))
        return Edge{y, ctab_.one()};
    if (isTerminal(y))
        return Edge{x, ctab_.one()};

    size_t set = hashCombine(hashPtr(x), hashPtr(y)) & mul_set_mask_;
    MulSlot *w0 = &mul_cache_[2 * set];
    MulSlot *w1 = w0 + 1;
    ++stats_.computeLookups;
    if (w0->a == x && w0->b == y) {
        ++stats_.computeHits;
        w0->age = 0;
        w1->age = 1;
        return w0->result;
    }
    if (w1->a == x && w1->b == y) {
        ++stats_.computeHits;
        w1->age = 0;
        w0->age = 1;
        return w1->result;
    }

    std::int32_t top = std::min(x->var, y->var);
    Edge ex{x, ctab_.one()};
    Edge ey{y, ctab_.one()};
    std::array<Edge, 4> res;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            Edge p0 = multiply(child(ex, i, 0, top), child(ey, 0, j, top));
            Edge p1 = multiply(child(ex, i, 1, top), child(ey, 1, j, top));
            res[2 * i + j] = add(p0, p1);
        }
    }
    Edge result = makeNode(top, res);
    // Evict the empty way if there is one, else the least recently
    // touched (age bit set).
    MulSlot *victim = w0->a == nullptr ? w0
                      : w1->a == nullptr ? w1
                      : w0->age != 0     ? w0
                                         : w1;
    if (victim->a != nullptr)
        ++stats_.mulEvictions;
    *victim = MulSlot{x, y, result, 0};
    (victim == w0 ? w1 : w0)->age = 1;
    return result;
}

Edge
Package::add(const Edge &a, const Edge &b)
{
    ++stats_.additions;
    if (a.weight == ctab_.zero())
        return b;
    if (b.weight == ctab_.zero())
        return a;
    if (a.node == b.node) {
        const Cplx *w = ctab_.lookup(*a.weight + *b.weight);
        if (w == ctab_.zero())
            return zeroEdge();
        return Edge{a.node, w};
    }

    // Addition is commutative; canonicalize the cache key order.
    Edge ka = a, kb = b;
    if (std::make_pair(kb.node, kb.weight) <
        std::make_pair(ka.node, ka.weight))
        std::swap(ka, kb);
    size_t set = hashCombine(hashEdge(ka), hashEdge(kb)) & add_set_mask_;
    AddSlot *w0 = &add_cache_[2 * set];
    AddSlot *w1 = w0 + 1;
    ++stats_.computeLookups;
    if (w0->valid && w0->a == ka && w0->b == kb) {
        ++stats_.computeHits;
        w0->age = 0;
        w1->age = 1;
        return w0->result;
    }
    if (w1->valid && w1->a == ka && w1->b == kb) {
        ++stats_.computeHits;
        w1->age = 0;
        w0->age = 1;
        return w1->result;
    }

    std::int32_t top = kTerminalVar;
    if (!isTerminal(a.node))
        top = a.node->var;
    if (!isTerminal(b.node))
        top = top == kTerminalVar ? b.node->var
                                  : std::min(top, b.node->var);
    QSYN_ASSERT(top != kTerminalVar,
                "add of two terminals must hit the same-node case");

    std::array<Edge, 4> res;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            res[2 * i + j] =
                add(child(a, i, j, top), child(b, i, j, top));
        }
    }
    Edge result = makeNode(top, res);
    AddSlot *victim = !w0->valid   ? w0
                      : !w1->valid ? w1
                      : w0->age != 0 ? w0
                                     : w1;
    if (victim->valid)
        ++stats_.addEvictions;
    *victim = AddSlot{ka, kb, result, true, 0};
    (victim == w0 ? w1 : w0)->age = 1;
    return result;
}

Edge
Package::conjugateTranspose(const Edge &a)
{
    Edge r;
    if (isTerminal(a.node)) {
        r = identityEdge();
    } else {
        size_t set = hashPtr(a.node) & ct_set_mask_;
        CtSlot *w0 = &ct_cache_[2 * set];
        CtSlot *w1 = w0 + 1;
        ++stats_.computeLookups;
        if (w0->a == a.node) {
            ++stats_.computeHits;
            w0->age = 0;
            w1->age = 1;
            r = w0->result;
        } else if (w1->a == a.node) {
            ++stats_.computeHits;
            w1->age = 0;
            w0->age = 1;
            r = w1->result;
        } else {
            std::array<Edge, 4> res;
            for (int i = 0; i < 2; ++i) {
                for (int j = 0; j < 2; ++j) {
                    res[2 * i + j] =
                        conjugateTranspose(a.node->e[2 * j + i]);
                }
            }
            r = makeNode(a.node->var, res);
            CtSlot *victim = w0->a == nullptr ? w0
                             : w1->a == nullptr ? w1
                             : w0->age != 0     ? w0
                                                : w1;
            if (victim->a != nullptr)
                ++stats_.ctEvictions;
            *victim = CtSlot{a.node, r, 0};
            (victim == w0 ? w1 : w0)->age = 1;
        }
    }
    if (a.weight == ctab_.one())
        return r;
    return scaled(r, std::conj(*a.weight));
}

Edge
Package::makeGateDD(const Mat2 &u, const std::vector<Qubit> &controls,
                    Qubit target)
{
    std::array<Edge, 4> em;
    for (int i = 0; i < 4; ++i)
        em[i] = terminalEdge(u.e[i]);

    std::vector<Qubit> sorted = controls;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());

    // Controls below the target (larger var): fold into the quadrant
    // edges before the target node is built. When such a control is 0
    // the whole gate is inactive: diagonal quadrants fall back to the
    // identity, off-diagonal quadrants to zero.
    size_t idx = 0;
    while (idx < sorted.size() && sorted[idx] > target) {
        auto var = static_cast<std::int32_t>(sorted[idx]);
        for (int i = 0; i < 2; ++i) {
            for (int j = 0; j < 2; ++j) {
                Edge inactive = i == j ? identityEdge() : zeroEdge();
                em[2 * i + j] = makeNode(
                    var, {inactive, zeroEdge(), zeroEdge(), em[2 * i + j]});
            }
        }
        ++idx;
    }

    Edge e = makeNode(static_cast<std::int32_t>(target), em);

    // Controls above the target, bottom-up.
    while (idx < sorted.size()) {
        QSYN_ASSERT(sorted[idx] < target, "control equals target");
        e = makeNode(static_cast<std::int32_t>(sorted[idx]),
                     {identityEdge(), zeroEdge(), zeroEdge(), e});
        ++idx;
    }
    return e;
}

Edge
Package::makeSwapDD(const std::vector<Qubit> &controls, Qubit a, Qubit b)
{
    // (c-)SWAP(a,b) = CNOT(b,a) . MCX(controls + {a}, b) . CNOT(b,a)
    Mat2 x = baseMatrix(GateKind::X);
    Edge outer = makeGateDD(x, {b}, a);
    std::vector<Qubit> cs = controls;
    cs.push_back(a);
    Edge inner = makeGateDD(x, cs, b);
    return multiply(outer, multiply(inner, outer));
}

Edge
Package::gateDD(const Gate &gate)
{
    switch (gate.kind()) {
      case GateKind::I:
      case GateKind::Barrier:
        return identityEdge();
      case GateKind::Swap:
        return makeSwapDD(gate.controls(), gate.targets()[0],
                          gate.targets()[1]);
      case GateKind::Measure:
        throw InternalError("cannot build a DD for a measurement",
                            __FILE__, __LINE__);
      default:
        return makeGateDD(gate.baseMatrix(), gate.controls(),
                          gate.target());
    }
}

Edge
Package::buildCircuit(const Circuit &circuit)
{
    Edge e = identityEdge();
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Barrier)
            continue;
        e = multiply(gateDD(g), e);
        if (unique_size_ > gc_threshold_)
            collectGarbage({e});
    }
    return e;
}

Edge
Package::makeProjector(const std::vector<Qubit> &zero_wires)
{
    std::vector<Qubit> sorted = zero_wires;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    Edge e = identityEdge();
    for (Qubit v : sorted) {
        e = makeNode(static_cast<std::int32_t>(v),
                     {e, zeroEdge(), zeroEdge(), zeroEdge()});
    }
    return e;
}

Cplx
Package::getEntry(const Edge &e, std::uint64_t row, std::uint64_t col,
                  int num_qubits)
{
    Cplx w = *e.weight;
    const Node *p = e.node;
    for (int v = 0; v < num_qubits; ++v) {
        int rb = static_cast<int>((row >> (num_qubits - 1 - v)) & 1);
        int cb = static_cast<int>((col >> (num_qubits - 1 - v)) & 1);
        if (isTerminal(p) || p->var > v) {
            if (rb != cb)
                return Cplx(0, 0);
            continue;
        }
        const Edge &next = p->e[2 * rb + cb];
        if (next.weight == ctab_.zero())
            return Cplx(0, 0);
        w *= *next.weight;
        p = next.node;
    }
    QSYN_ASSERT(isTerminal(p), "edge deeper than the qubit context");
    return w;
}

size_t
Package::countNodes(const Edge &e)
{
    std::vector<const Node *> stack{e.node};
    std::unordered_map<const Node *, bool> seen;
    size_t count = 0;
    while (!stack.empty()) {
        const Node *n = stack.back();
        stack.pop_back();
        if (isTerminal(n) || seen.count(n))
            continue;
        seen.emplace(n, true);
        ++count;
        for (const Edge &c : n->e) {
            if (c.node != nullptr)
                stack.push_back(c.node);
        }
    }
    return count;
}

double
Package::maxMagnitude(const Edge &e)
{
    if (e.weight == ctab_.zero())
        return 0.0;
    // Max |entry| = max over paths of the product of |weight|s, which
    // decomposes level by level into a per-node maximum.
    struct Rec
    {
        Package *pkg;
        double
        operator()(const Node *n)
        {
            if (isTerminal(n))
                return 1.0;
            auto it = pkg->mag_cache_.find(n);
            if (it != pkg->mag_cache_.end())
                return it->second;
            double m = 0.0;
            for (const Edge &c : n->e) {
                if (c.weight == pkg->ctab_.zero())
                    continue;
                m = std::max(m, std::abs(*c.weight) * (*this)(c.node));
            }
            pkg->mag_cache_.emplace(n, m);
            return m;
        }
    } rec{this};
    return std::abs(*e.weight) * rec(e.node);
}

bool
Package::approxEqualEdges(const Edge &a, const Edge &b, double eps)
{
    if (a == b)
        return true;
    Edge diff = add(a, scaled(b, Cplx(-1, 0)));
    return maxMagnitude(diff) < eps;
}

void
Package::markReachable(Node *n, std::uint32_t epoch)
{
    if (isTerminal(n) || n->mark == epoch)
        return;
    n->mark = epoch;
    for (Edge &c : n->e) {
        if (c.node != nullptr)
            markReachable(c.node, epoch);
    }
}

void
Package::collectGarbage(const std::vector<Edge> &roots)
{
    ++stats_.gcRuns;
    ++mark_epoch_;
    for (const Edge &r : roots) {
        if (r.node != nullptr)
            markReachable(r.node, mark_epoch_);
    }
    for (Node *&slot : unique_slots_) {
        Node *n = slot;
        if (n == nullptr)
            continue;
        if (n->mark != mark_epoch_) {
            slot = nullptr;
            n->next = free_list_;
            free_list_ = n;
            ++free_count_;
            --unique_size_;
        }
    }
    // Open addressing cannot leave holes in probe chains: rebuild the
    // survivors' slots. Nodes themselves never move, so edges (and
    // canonicity) are untouched. Shrink the slot array when survivors
    // occupy a small fraction of it, never below the initial capacity.
    size_t capacity = unique_slots_.size();
    while (capacity > min_unique_capacity_ &&
           unique_size_ < capacity / kShrinkDivisor)
        capacity /= 2;
    rehashUnique(capacity);

    std::fill(mul_cache_.begin(), mul_cache_.end(), MulSlot{});
    std::fill(add_cache_.begin(), add_cache_.end(), AddSlot{});
    std::fill(ct_cache_.begin(), ct_cache_.end(), CtSlot{});
    mag_cache_.clear();
    // If the survivors alone still exceed the threshold, raise it so we
    // do not thrash in a GC loop; when a later sweep shows the spike
    // was transient, decay back toward the configured threshold so GC
    // re-arms for long-lived (batch-worker) packages.
    if (unique_size_ > gc_threshold_ / 2) {
        gc_threshold_ *= 2;
    } else if (gc_threshold_ > min_gc_threshold_ &&
               unique_size_ < gc_threshold_ / 4) {
        gc_threshold_ =
            std::max(min_gc_threshold_, gc_threshold_ / 2);
    }
}

void
Package::setGcThreshold(size_t threshold)
{
    gc_threshold_ = std::max(threshold, kMinGcThreshold);
    min_gc_threshold_ = gc_threshold_;
}

void
Package::publishMetrics(const char *prefix) const
{
    obs::Sink *s = obs::sink();
    if (s == nullptr)
        return;
    obs::MetricsRegistry &m = s->metrics();
    std::string p(prefix);
    m.setGauge(p + ".live_nodes", static_cast<double>(unique_size_));
    m.setGauge(p + ".peak_nodes", static_cast<double>(stats_.peakNodes));
    m.setGauge(p + ".arena_nodes", static_cast<double>(arena_.size()));
    m.setGauge(p + ".arena_bytes", static_cast<double>(arenaBytes()));
    m.setGauge(p + ".free_list_length",
               static_cast<double>(free_count_));
    m.setGauge(p + ".unique_capacity",
               static_cast<double>(unique_slots_.size()));
    m.setGauge(p + ".unique_load_factor", uniqueLoadFactor());
    m.setGauge(p + ".unique_rehashes",
               static_cast<double>(stats_.uniqueRehashes));
    m.setGauge(p + ".unique_lookups",
               static_cast<double>(stats_.uniqueLookups));
    m.setGauge(p + ".unique_hits", static_cast<double>(stats_.uniqueHits));
    m.setGauge(p + ".unique_hit_rate", stats_.uniqueHitRate());
    m.setGauge(p + ".compute_lookups",
               static_cast<double>(stats_.computeLookups));
    m.setGauge(p + ".compute_hits",
               static_cast<double>(stats_.computeHits));
    m.setGauge(p + ".compute_hit_rate", stats_.computeHitRate());
    m.setGauge(p + ".mul_evictions",
               static_cast<double>(stats_.mulEvictions));
    m.setGauge(p + ".add_evictions",
               static_cast<double>(stats_.addEvictions));
    m.setGauge(p + ".ct_evictions",
               static_cast<double>(stats_.ctEvictions));
    m.setGauge(p + ".multiplies", static_cast<double>(stats_.multiplies));
    m.setGauge(p + ".additions", static_cast<double>(stats_.additions));
    m.setGauge(p + ".gc_runs", static_cast<double>(stats_.gcRuns));
}

} // namespace qsyn::dd
