#include "qmdd/package.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"
#include "obs/obs.hpp"

namespace qsyn::dd {

namespace {

/** Unique-table resize trigger: a shard grows when its live nodes
 *  would exceed this percentage of its slot count. Linear probing
 *  stays short well below 70%, and growing at a fixed fraction keeps
 *  inserts amortized O(1). */
constexpr size_t kMaxLoadPercent = 65;

/** The GC sweep halves a shard when survivors use less than
 *  1/kShrinkDivisor of its slots, so a long-lived worker that saw one
 *  huge circuit does not pin a huge table forever. */
constexpr size_t kShrinkDivisor = 8;

/** Floor for setGcThreshold / the GC shrink path: below this the
 *  collector would run every few gates and thrash. */
constexpr size_t kMinGcThreshold = 1024;

/** Per-shard slot floor. Deliberately small so tiny configured
 *  capacities (tests use 16-64 total slots to force rehashing) still
 *  exercise the growth path even when spread across many shards. */
constexpr size_t kMinShardSlots = 16;

/** Upper bound on shards; beyond this lock contention is no longer
 *  the bottleneck and the fixed per-shard footprint dominates. */
constexpr size_t kMaxShards = 256;

size_t
nextPowerOfTwo(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

size_t
hashCombine(size_t seed, size_t v)
{
    return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

size_t
hashPtr(const void *p)
{
    auto v = reinterpret_cast<std::uintptr_t>(p);
    // Pointer values are alignment-structured; mix them.
    return static_cast<size_t>((v >> 4) * 0x9e3779b97f4a7c15ull);
}

size_t
hashEdge(const Edge &e)
{
    return hashCombine(hashPtr(e.node), hashPtr(e.weight));
}

/** Serial source for the thread-local context lookup. Starts at 1 so
 *  a zero-initialized thread-local cache can never match. */
std::atomic<std::uint64_t> g_package_serial{1};

} // namespace

size_t
Package::hashNode(std::int32_t var, const std::array<Edge, 4> &e)
{
    size_t h = static_cast<size_t>(var) * 0xc2b2ae3d27d4eb4full;
    for (const Edge &child : e)
        h = hashCombine(h, hashEdge(child));
    return h;
}

Package::Package() : Package(PackageConfig{})
{
}

Package::Package(const PackageConfig &config)
    : serial_(g_package_serial.fetch_add(1, std::memory_order_relaxed)),
      mul_ways_(2 * nextPowerOfTwo(std::max<size_t>(
                        config.mulCacheSets, 16))),
      add_ways_(2 * nextPowerOfTwo(std::max<size_t>(
                        config.addCacheSets, 16))),
      ct_ways_(2 * nextPowerOfTwo(std::max<size_t>(
                       config.ctCacheSets, 16))),
      mul_set_mask_(mul_ways_ / 2 - 1),
      add_set_mask_(add_ways_ / 2 - 1),
      ct_set_mask_(ct_ways_ / 2 - 1),
      gc_threshold_(std::max(config.gcThreshold, kMinGcThreshold)),
      min_gc_threshold_(
          std::max(config.gcThreshold, kMinGcThreshold))
{
    terminal_.var = kTerminalVar;
    size_t num_shards = nextPowerOfTwo(std::clamp<size_t>(
        config.uniqueShards, 1, kMaxShards));
    shard_mask_ = num_shards - 1;
    // Split the configured capacity evenly across shards, with a small
    // per-shard floor. Tiny totals (test configs) end up below the old
    // single-table floor of 64 on purpose: growth still triggers.
    size_t per_shard = nextPowerOfTwo(std::max(
        config.initialUniqueCapacity / num_shards, kMinShardSlots));
    for (size_t i = 0; i < num_shards; ++i) {
        shards_.emplace_back();
        UniqueShard &s = shards_.back();
        s.slots.assign(per_shard, nullptr);
        s.mask = per_shard - 1;
        s.minCapacity = per_shard;
    }
}

Package::~Package() = default;

Package::WorkerContext *
Package::context() const
{
    // One compare on the hot path: every public entry point resolves
    // the calling thread's context through this cache.
    thread_local std::uint64_t cached_serial = 0;
    thread_local WorkerContext *cached_ctx = nullptr;
    if (cached_serial == serial_)
        return cached_ctx;
    WorkerContext *ctx = contextSlow();
    cached_serial = serial_;
    cached_ctx = ctx;
    return ctx;
}

Package::WorkerContext *
Package::contextSlow() const
{
    // Serials are unique across all packages ever constructed, so a
    // stale map entry for a destroyed package can never be returned
    // for a new one that reuses its address.
    thread_local std::unordered_map<std::uint64_t, WorkerContext *> map;
    auto it = map.find(serial_);
    if (it != map.end())
        return it->second;
    auto owned = std::make_unique<WorkerContext>();
    owned->mul_cache.resize(mul_ways_);
    owned->add_cache.resize(add_ways_);
    owned->ct_cache.resize(ct_ways_);
    WorkerContext *ctx = owned.get();
    {
        std::lock_guard<std::mutex> lock(ctx_mu_);
        contexts_.push_back(std::move(owned));
    }
    map.emplace(serial_, ctx);
    return ctx;
}

Package::UniqueShard &
Package::shardOf(size_t hash)
{
    // Slot probing consumes the low hash bits (shard.mask), so the
    // shard index comes from the high half: the two selections stay
    // uncorrelated.
    return shards_[(hash >> 32) & shard_mask_];
}

void
Package::lockShard(UniqueShard &shard)
{
    if (shard.mu.try_lock()) {
        ++shard.lockAcquisitions;
        return;
    }
    shard.mu.lock();
    ++shard.lockAcquisitions;
    ++shard.lockContended;
}

Edge
Package::zeroEdge()
{
    return Edge{&terminal_, ctab_.zero()};
}

Edge
Package::identityEdge()
{
    return Edge{&terminal_, ctab_.one()};
}

Edge
Package::terminalEdge(const Cplx &w)
{
    const Cplx *cw = ctab_.lookup(w);
    return Edge{&terminal_, cw};
}

Node *
Package::allocNode(UniqueShard &shard)
{
    auto pop = [this](UniqueShard &s) {
        Node *n = s.freeList;
        s.freeList = n->next;
        --s.freeCount;
        free_total_.fetch_sub(1, std::memory_order_relaxed);
        n->next = nullptr;
        n->mark = 0;
        return n;
    };
    if (shard.freeList != nullptr)
        return pop(shard);
    // A rebuild after GC hashes the same logical nodes to different
    // shards (hashes mix recycled pointers), so one shard's free list
    // can run dry while a sibling's is full. Steal before growing the
    // arena; try_lock keeps it deadlock-free (we hold `shard.mu`), and
    // the global counter makes the scan free while no node is free.
    if (free_total_.load(std::memory_order_relaxed) > 0) {
        for (UniqueShard &other : shards_) {
            if (&other == &shard || !other.mu.try_lock())
                continue;
            std::lock_guard<std::mutex> guard(other.mu, std::adopt_lock);
            if (other.freeList != nullptr)
                return pop(other);
        }
    }
    shard.arena.emplace_back();
    return &shard.arena.back();
}

void
Package::rehashShard(UniqueShard &shard, size_t capacity)
{
    std::vector<Node *> slots(capacity, nullptr);
    size_t mask = capacity - 1;
    for (Node *n : shard.slots) {
        if (n == nullptr)
            continue;
        size_t idx = n->hash & mask;
        while (slots[idx] != nullptr)
            idx = (idx + 1) & mask;
        slots[idx] = n;
    }
    shard.slots = std::move(slots);
    shard.mask = mask;
}

Edge
Package::makeNode(std::int32_t var, const std::array<Edge, 4> &edges)
{
    return makeNodeImpl(*context(), var, edges);
}

Edge
Package::makeNodeImpl(WorkerContext &ctx, std::int32_t var,
                      const std::array<Edge, 4> &edges)
{
    std::array<Edge, 4> e = edges;
    // Zero-edge canonicalization: weight zero always points at terminal.
    for (Edge &child : e) {
        if (child.weight == ctab_.zero()) {
            child.node = &terminal_;
        } else {
            QSYN_ASSERT(isTerminal(child.node) || child.node->var > var,
                        "QMDD child variable out of order");
        }
    }

    // Identity-skip reduction (also catches the all-zero node).
    if (e[1].weight == ctab_.zero() && e[2].weight == ctab_.zero() &&
        e[0] == e[3]) {
        return e[0];
    }

    // Normalize by the leftmost edge of maximal magnitude. Squared
    // magnitudes avoid a hypot per child; the pivot tolerance is
    // squared to match (all magnitudes here are bounded by ~1, so the
    // square cannot overflow or lose the eps).
    std::array<double, 4> mags2;
    double max2 = 0.0;
    for (int i = 0; i < 4; ++i) {
        mags2[i] = e[i].weight == ctab_.zero()
                       ? 0.0
                       : std::norm(*e[i].weight);
        max2 = std::max(max2, mags2[i]);
    }
    QSYN_ASSERT(max2 > 0.0, "all-zero node escaped reduction");
    const double max_mag = std::sqrt(max2);
    const double thr =
        max_mag > kWeightEps
            ? (max_mag - kWeightEps) * (max_mag - kWeightEps)
            : 0.0;
    int norm_idx = 0;
    while (mags2[norm_idx] < thr)
        ++norm_idx;
    const Cplx *norm_ptr = e[norm_idx].weight;
    if (norm_ptr != ctab_.one()) {
        // Pivot weight 1 (the common case: children of canonical nodes
        // are already normalized) leaves every ratio untouched.
        const Cplx norm = *norm_ptr;
        for (int i = 0; i < 4; ++i) {
            if (e[i].weight == ctab_.zero())
                continue;
            if (e[i].weight == norm_ptr) {
                // Covers norm_idx itself and any sibling sharing the
                // same interned weight: the ratio is exactly 1, no
                // division or table lookup needed.
                e[i].weight = ctab_.one();
            } else {
                e[i].weight = ctab_.lookup(*e[i].weight / norm);
                if (e[i].weight == ctab_.zero())
                    e[i].node = &terminal_;
            }
        }
    }

    ctx.stats.bump(ctx.stats.uniqueLookups);
    size_t h = hashNode(var, e);
    UniqueShard &shard = shardOf(h);
    lockShard(shard);
    std::lock_guard<std::mutex> guard(shard.mu, std::adopt_lock);

    // Grow before probing so the insert position below stays valid.
    if ((shard.size + 1) * 100 > shard.slots.size() * kMaxLoadPercent) {
        rehashShard(shard, shard.slots.size() * 2);
        ++shard.rehashes;
    }
    size_t idx = h & shard.mask;
    while (Node *n = shard.slots[idx]) {
        if (n->hash == h && n->var == var && n->e == e) {
            ctx.stats.bump(ctx.stats.uniqueHits);
            return Edge{n, norm_ptr};
        }
        idx = (idx + 1) & shard.mask;
    }
    Node *n = allocNode(shard);
    n->var = var;
    n->e = e;
    n->hash = h;
    shard.slots[idx] = n;
    ++shard.size;
    // Peak is a *live*-node high-water mark: tracked here (the only
    // place the live count grows) so unique-table hits and free-list
    // recycling cannot inflate it.
    size_t live = live_nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
    size_t peak = peak_nodes_.load(std::memory_order_relaxed);
    while (peak < live && !peak_nodes_.compare_exchange_weak(
                              peak, live, std::memory_order_relaxed)) {
    }
    return Edge{n, norm_ptr};
}

Edge
Package::scaled(const Edge &e, const Cplx &factor)
{
    if (e.weight == ctab_.zero())
        return zeroEdge();
    const Cplx *w = ctab_.lookup(*e.weight * factor);
    if (w == ctab_.zero())
        return zeroEdge();
    return Edge{e.node, w};
}

Edge
Package::child(const Edge &x, int r, int c, std::int32_t var)
{
    if (isTerminal(x.node) || x.node->var > var) {
        // Identity-skip: diagonal continues, off-diagonal is zero.
        return r == c ? x : zeroEdge();
    }
    QSYN_ASSERT(x.node->var == var, "child() level mismatch");
    Edge stored = x.node->e[2 * r + c];
    if (stored.weight == ctab_.zero())
        return zeroEdge();
    if (x.weight == ctab_.one())
        return stored;
    if (stored.weight == ctab_.one())
        return Edge{stored.node, x.weight};
    return Edge{stored.node, ctab_.lookup(*x.weight * *stored.weight)};
}

const Cplx *
Package::mulWeights(const Cplx *a, const Cplx *b)
{
    // Normalization makes 1 by far the most common weight, and zero
    // edges are pruned before multiplication, so both fast paths fire
    // constantly; the interning lookup is the slow path.
    if (a == ctab_.one())
        return b;
    if (b == ctab_.one())
        return a;
    if (a == ctab_.zero() || b == ctab_.zero())
        return ctab_.zero();
    return ctab_.lookup(*a * *b);
}

Edge
Package::multiply(const Edge &a, const Edge &b)
{
    return multiplyImpl(*context(), a, b);
}

Edge
Package::multiplyImpl(WorkerContext &ctx, const Edge &a, const Edge &b)
{
    if (a.weight == ctab_.zero() || b.weight == ctab_.zero())
        return zeroEdge();
    Edge r = mulNodes(ctx, a.node, b.node);
    if (r.weight == ctab_.zero())
        return zeroEdge();
    const Cplx *w = mulWeights(mulWeights(a.weight, b.weight), r.weight);
    if (w == ctab_.zero())
        return zeroEdge();
    return Edge{r.node, w};
}

Edge
Package::mulNodes(WorkerContext &ctx, Node *x, Node *y)
{
    ctx.stats.bump(ctx.stats.multiplies);
    if (isTerminal(x))
        return Edge{y, ctab_.one()};
    if (isTerminal(y))
        return Edge{x, ctab_.one()};

    size_t set = hashCombine(hashPtr(x), hashPtr(y)) & mul_set_mask_;
    MulSlot *w0 = &ctx.mul_cache[2 * set];
    MulSlot *w1 = w0 + 1;
    ctx.stats.bump(ctx.stats.computeLookups);
    if (w0->a == x && w0->b == y) {
        ctx.stats.bump(ctx.stats.computeHits);
        w0->age = 0;
        w1->age = 1;
        return w0->result;
    }
    if (w1->a == x && w1->b == y) {
        ctx.stats.bump(ctx.stats.computeHits);
        w1->age = 0;
        w0->age = 1;
        return w1->result;
    }

    std::int32_t top = std::min(x->var, y->var);
    Edge ex{x, ctab_.one()};
    Edge ey{y, ctab_.one()};
    std::array<Edge, 4> res;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            Edge p0 = multiplyImpl(ctx, child(ex, i, 0, top),
                                   child(ey, 0, j, top));
            Edge p1 = multiplyImpl(ctx, child(ex, i, 1, top),
                                   child(ey, 1, j, top));
            res[2 * i + j] = addImpl(ctx, p0, p1);
        }
    }
    Edge result = makeNodeImpl(ctx, top, res);
    // Evict the empty way if there is one, else the least recently
    // touched (age bit set).
    MulSlot *victim = w0->a == nullptr   ? w0
                      : w1->a == nullptr ? w1
                      : w0->age != 0     ? w0
                                         : w1;
    if (victim->a != nullptr)
        ctx.stats.bump(ctx.stats.mulEvictions);
    *victim = MulSlot{x, y, result, 0};
    (victim == w0 ? w1 : w0)->age = 1;
    return result;
}

Edge
Package::add(const Edge &a, const Edge &b)
{
    return addImpl(*context(), a, b);
}

Edge
Package::addImpl(WorkerContext &ctx, const Edge &a, const Edge &b)
{
    ctx.stats.bump(ctx.stats.additions);
    if (a.weight == ctab_.zero())
        return b;
    if (b.weight == ctab_.zero())
        return a;
    if (a.node == b.node) {
        const Cplx *w = ctab_.lookup(*a.weight + *b.weight);
        if (w == ctab_.zero())
            return zeroEdge();
        return Edge{a.node, w};
    }

    // Addition is commutative; canonicalize the cache key order.
    Edge ka = a, kb = b;
    if (std::make_pair(kb.node, kb.weight) <
        std::make_pair(ka.node, ka.weight))
        std::swap(ka, kb);
    size_t set = hashCombine(hashEdge(ka), hashEdge(kb)) & add_set_mask_;
    AddSlot *w0 = &ctx.add_cache[2 * set];
    AddSlot *w1 = w0 + 1;
    ctx.stats.bump(ctx.stats.computeLookups);
    if (w0->valid && w0->a == ka && w0->b == kb) {
        ctx.stats.bump(ctx.stats.computeHits);
        w0->age = 0;
        w1->age = 1;
        return w0->result;
    }
    if (w1->valid && w1->a == ka && w1->b == kb) {
        ctx.stats.bump(ctx.stats.computeHits);
        w1->age = 0;
        w0->age = 1;
        return w1->result;
    }

    std::int32_t top = kTerminalVar;
    if (!isTerminal(a.node))
        top = a.node->var;
    if (!isTerminal(b.node))
        top = top == kTerminalVar ? b.node->var
                                  : std::min(top, b.node->var);
    QSYN_ASSERT(top != kTerminalVar,
                "add of two terminals must hit the same-node case");

    std::array<Edge, 4> res;
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            res[2 * i + j] = addImpl(ctx, child(a, i, j, top),
                                     child(b, i, j, top));
        }
    }
    Edge result = makeNodeImpl(ctx, top, res);
    AddSlot *victim = !w0->valid     ? w0
                      : !w1->valid   ? w1
                      : w0->age != 0 ? w0
                                     : w1;
    if (victim->valid)
        ctx.stats.bump(ctx.stats.addEvictions);
    *victim = AddSlot{ka, kb, result, true, 0};
    (victim == w0 ? w1 : w0)->age = 1;
    return result;
}

Edge
Package::conjugateTranspose(const Edge &a)
{
    return ctImpl(*context(), a);
}

Edge
Package::ctImpl(WorkerContext &ctx, const Edge &a)
{
    Edge r;
    if (isTerminal(a.node)) {
        r = identityEdge();
    } else {
        size_t set = hashPtr(a.node) & ct_set_mask_;
        CtSlot *w0 = &ctx.ct_cache[2 * set];
        CtSlot *w1 = w0 + 1;
        ctx.stats.bump(ctx.stats.computeLookups);
        if (w0->a == a.node) {
            ctx.stats.bump(ctx.stats.computeHits);
            w0->age = 0;
            w1->age = 1;
            r = w0->result;
        } else if (w1->a == a.node) {
            ctx.stats.bump(ctx.stats.computeHits);
            w1->age = 0;
            w0->age = 1;
            r = w1->result;
        } else {
            std::array<Edge, 4> res;
            for (int i = 0; i < 2; ++i) {
                for (int j = 0; j < 2; ++j) {
                    res[2 * i + j] =
                        ctImpl(ctx, a.node->e[2 * j + i]);
                }
            }
            r = makeNodeImpl(ctx, a.node->var, res);
            CtSlot *victim = w0->a == nullptr   ? w0
                             : w1->a == nullptr ? w1
                             : w0->age != 0     ? w0
                                                : w1;
            if (victim->a != nullptr)
                ctx.stats.bump(ctx.stats.ctEvictions);
            *victim = CtSlot{a.node, r, 0};
            (victim == w0 ? w1 : w0)->age = 1;
        }
    }
    if (a.weight == ctab_.one())
        return r;
    return scaled(r, std::conj(*a.weight));
}

Edge
Package::makeGateDD(const Mat2 &u, const std::vector<Qubit> &controls,
                    Qubit target)
{
    WorkerContext &ctx = *context();
    std::array<Edge, 4> em;
    for (int i = 0; i < 4; ++i)
        em[i] = terminalEdge(u.e[i]);

    std::vector<Qubit> sorted = controls;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());

    // Controls below the target (larger var): fold into the quadrant
    // edges before the target node is built. When such a control is 0
    // the whole gate is inactive: diagonal quadrants fall back to the
    // identity, off-diagonal quadrants to zero.
    size_t idx = 0;
    while (idx < sorted.size() && sorted[idx] > target) {
        auto var = static_cast<std::int32_t>(sorted[idx]);
        for (int i = 0; i < 2; ++i) {
            for (int j = 0; j < 2; ++j) {
                Edge inactive = i == j ? identityEdge() : zeroEdge();
                em[2 * i + j] = makeNodeImpl(
                    ctx, var,
                    {inactive, zeroEdge(), zeroEdge(), em[2 * i + j]});
            }
        }
        ++idx;
    }

    Edge e = makeNodeImpl(ctx, static_cast<std::int32_t>(target), em);

    // Controls above the target, bottom-up.
    while (idx < sorted.size()) {
        QSYN_ASSERT(sorted[idx] < target, "control equals target");
        e = makeNodeImpl(ctx, static_cast<std::int32_t>(sorted[idx]),
                         {identityEdge(), zeroEdge(), zeroEdge(), e});
        ++idx;
    }
    return e;
}

Edge
Package::makeSwapDD(const std::vector<Qubit> &controls, Qubit a, Qubit b)
{
    // (c-)SWAP(a,b) = CNOT(b,a) . MCX(controls + {a}, b) . CNOT(b,a)
    WorkerContext &ctx = *context();
    Mat2 x = baseMatrix(GateKind::X);
    Edge outer = makeGateDD(x, {b}, a);
    std::vector<Qubit> cs = controls;
    cs.push_back(a);
    Edge inner = makeGateDD(x, cs, b);
    return multiplyImpl(ctx, outer, multiplyImpl(ctx, inner, outer));
}

Edge
Package::gateDD(const Gate &gate)
{
    switch (gate.kind()) {
      case GateKind::I:
      case GateKind::Barrier:
        return identityEdge();
      case GateKind::Swap:
        return makeSwapDD(gate.controls(), gate.targets()[0],
                          gate.targets()[1]);
      case GateKind::Measure:
        throw InternalError("cannot build a DD for a measurement",
                            __FILE__, __LINE__);
      default:
        return makeGateDD(gate.baseMatrix(), gate.controls(),
                          gate.target());
    }
}

Edge
Package::buildCircuit(const Circuit &circuit)
{
    Session session(*this);
    WorkerContext &ctx = *context();
    Edge e = identityEdge();
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Barrier)
            continue;
        e = multiplyImpl(ctx, gateDD(g), e);
        if (live_nodes_.load(std::memory_order_relaxed) >
            gc_threshold_.load(std::memory_order_relaxed))
            requestGc();
        if (gcPending())
            safePoint({e});
    }
    return e;
}

Edge
Package::makeProjector(const std::vector<Qubit> &zero_wires)
{
    WorkerContext &ctx = *context();
    std::vector<Qubit> sorted = zero_wires;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    Edge e = identityEdge();
    for (Qubit v : sorted) {
        e = makeNodeImpl(ctx, static_cast<std::int32_t>(v),
                         {e, zeroEdge(), zeroEdge(), zeroEdge()});
    }
    return e;
}

Cplx
Package::getEntry(const Edge &e, std::uint64_t row, std::uint64_t col,
                  int num_qubits)
{
    Cplx w = *e.weight;
    const Node *p = e.node;
    for (int v = 0; v < num_qubits; ++v) {
        int rb = static_cast<int>((row >> (num_qubits - 1 - v)) & 1);
        int cb = static_cast<int>((col >> (num_qubits - 1 - v)) & 1);
        if (isTerminal(p) || p->var > v) {
            if (rb != cb)
                return Cplx(0, 0);
            continue;
        }
        const Edge &next = p->e[2 * rb + cb];
        if (next.weight == ctab_.zero())
            return Cplx(0, 0);
        w *= *next.weight;
        p = next.node;
    }
    QSYN_ASSERT(isTerminal(p), "edge deeper than the qubit context");
    return w;
}

size_t
Package::countNodes(const Edge &e)
{
    std::vector<const Node *> stack{e.node};
    std::unordered_map<const Node *, bool> seen;
    size_t count = 0;
    while (!stack.empty()) {
        const Node *n = stack.back();
        stack.pop_back();
        if (isTerminal(n) || seen.count(n))
            continue;
        seen.emplace(n, true);
        ++count;
        for (const Edge &c : n->e) {
            if (c.node != nullptr)
                stack.push_back(c.node);
        }
    }
    return count;
}

double
Package::maxMagnitude(const Edge &e)
{
    if (e.weight == ctab_.zero())
        return 0.0;
    WorkerContext &ctx = *context();
    // Max |entry| = max over paths of the product of |weight|s, which
    // decomposes level by level into a per-node maximum.
    struct Rec
    {
        Package *pkg;
        WorkerContext *ctx;
        double
        operator()(const Node *n)
        {
            if (isTerminal(n))
                return 1.0;
            auto it = ctx->mag_cache.find(n);
            if (it != ctx->mag_cache.end())
                return it->second;
            double m = 0.0;
            for (const Edge &c : n->e) {
                if (c.weight == pkg->ctab_.zero())
                    continue;
                m = std::max(m, std::abs(*c.weight) * (*this)(c.node));
            }
            ctx->mag_cache.emplace(n, m);
            return m;
        }
    } rec{this, &ctx};
    return std::abs(*e.weight) * rec(e.node);
}

bool
Package::approxEqualEdges(const Edge &a, const Edge &b, double eps)
{
    if (a == b)
        return true;
    Edge diff = add(a, scaled(b, Cplx(-1, 0)));
    return maxMagnitude(diff) < eps;
}

size_t
Package::uniqueCapacity() const
{
    size_t total = 0;
    for (const UniqueShard &s : shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        total += s.slots.size();
    }
    return total;
}

double
Package::uniqueLoadFactor() const
{
    size_t cap = uniqueCapacity();
    return cap ? static_cast<double>(activeNodes()) /
                     static_cast<double>(cap)
               : 0.0;
}

size_t
Package::arenaNodes() const
{
    size_t total = 0;
    for (const UniqueShard &s : shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        total += s.arena.size();
    }
    return total;
}

size_t
Package::arenaBytes() const
{
    return arenaNodes() * sizeof(Node);
}

size_t
Package::freeListLength() const
{
    size_t total = 0;
    for (const UniqueShard &s : shards_) {
        std::lock_guard<std::mutex> lock(s.mu);
        total += s.freeCount;
    }
    return total;
}

void
Package::beginSession()
{
    WorkerContext *ctx = context();
    if (ctx->sessionDepth++ > 0)
        return;
    std::lock_guard<std::mutex> lock(gc_mu_);
    ++active_mutators_;
}

void
Package::endSession()
{
    WorkerContext *ctx = context();
    if (--ctx->sessionDepth > 0)
        return;
    std::lock_guard<std::mutex> lock(gc_mu_);
    --active_mutators_;
    if (!gc_requested_.load(std::memory_order_relaxed))
        return;
    if (active_mutators_ == 0) {
        // Last session out with a GC still pending: drop the request
        // rather than sweep, so edges the caller just built (and still
        // holds outside any session) stay alive. The next automatic
        // trigger re-requests.
        gc_requested_.store(false, std::memory_order_relaxed);
    } else if (parked_ == active_mutators_) {
        // This session was the only one not yet parked; its exit
        // completes the barrier on behalf of the waiters.
        sweepLocked({});
    }
}

void
Package::requestGc()
{
    gc_requested_.store(true, std::memory_order_relaxed);
}

void
Package::safePoint(const std::vector<Edge> &roots)
{
    if (!gcPending())
        return;
    WorkerContext *ctx = context();
    QSYN_ASSERT(ctx->sessionDepth > 0,
                "safePoint outside an active Session");
    std::unique_lock<std::mutex> lock(gc_mu_);
    if (!gc_requested_.load(std::memory_order_relaxed))
        return; // served while we took the lock
    ctx->parkedRoots = roots;
    ctx->parked = true;
    ++parked_;
    if (parked_ == active_mutators_) {
        // Everyone is at the barrier; this thread is the sweeper.
        sweepLocked({});
        return;
    }
    std::uint64_t gen = gc_generation_;
    gc_cv_.wait(lock, [&] { return gc_generation_ != gen; });
}

void
Package::markReachable(Node *n, std::uint32_t epoch)
{
    if (isTerminal(n) || n->mark == epoch)
        return;
    n->mark = epoch;
    for (Edge &c : n->e) {
        if (c.node != nullptr)
            markReachable(c.node, epoch);
    }
}

void
Package::collectGarbage(const std::vector<Edge> &roots)
{
    std::lock_guard<std::mutex> lock(gc_mu_);
    sweepLocked(roots);
}

void
Package::sweepLocked(const std::vector<Edge> &extra_roots)
{
    gc_runs_.fetch_add(1, std::memory_order_relaxed);
    ++mark_epoch_;
    for (const Edge &r : extra_roots) {
        if (r.node != nullptr)
            markReachable(r.node, mark_epoch_);
    }
    {
        // Parked sessions' published roots survive too. Their owner
        // threads are blocked on gc_cv_ (their pre-park writes ordered
        // by gc_mu_), so touching their contexts here is race-free.
        std::lock_guard<std::mutex> clock(ctx_mu_);
        for (const auto &c : contexts_) {
            if (!c->parked)
                continue;
            for (const Edge &r : c->parkedRoots) {
                if (r.node != nullptr)
                    markReachable(r.node, mark_epoch_);
            }
        }
    }

    size_t freed = 0;
    for (UniqueShard &shard : shards_) {
        std::lock_guard<std::mutex> slock(shard.mu);
        for (Node *&slot : shard.slots) {
            Node *n = slot;
            if (n == nullptr)
                continue;
            if (n->mark != mark_epoch_) {
                slot = nullptr;
                n->next = shard.freeList;
                shard.freeList = n;
                ++shard.freeCount;
                --shard.size;
                ++freed;
            }
        }
        // Open addressing cannot leave holes in probe chains: rebuild
        // the survivors' slots. Nodes themselves never move, so edges
        // (and canonicity) are untouched. Shrink the slot array when
        // survivors occupy a small fraction of it, never below the
        // shard's initial capacity.
        size_t capacity = shard.slots.size();
        while (capacity > shard.minCapacity &&
               shard.size < capacity / kShrinkDivisor)
            capacity /= 2;
        rehashShard(shard, capacity);
    }
    size_t live = live_nodes_.fetch_sub(freed, std::memory_order_relaxed)
                  - freed;
    free_total_.fetch_add(freed, std::memory_order_relaxed);

    {
        // Every thread's compute caches may hold freed nodes; clear
        // them all. Non-parked contexts belong to threads that are not
        // mutating (contract), so this cannot race.
        std::lock_guard<std::mutex> clock(ctx_mu_);
        for (const auto &c : contexts_) {
            std::fill(c->mul_cache.begin(), c->mul_cache.end(),
                      MulSlot{});
            std::fill(c->add_cache.begin(), c->add_cache.end(),
                      AddSlot{});
            std::fill(c->ct_cache.begin(), c->ct_cache.end(), CtSlot{});
            c->mag_cache.clear();
            if (c->parked) {
                c->parked = false;
                c->parkedRoots.clear();
            }
        }
    }

    // If the survivors alone still exceed the threshold, raise it so we
    // do not thrash in a GC loop; when a later sweep shows the spike
    // was transient, decay back toward the configured threshold so GC
    // re-arms for long-lived (batch-worker) packages.
    size_t thr = gc_threshold_.load(std::memory_order_relaxed);
    size_t min_thr = min_gc_threshold_.load(std::memory_order_relaxed);
    if (live > thr / 2) {
        gc_threshold_.store(thr * 2, std::memory_order_relaxed);
    } else if (thr > min_thr && live < thr / 4) {
        gc_threshold_.store(std::max(min_thr, thr / 2),
                            std::memory_order_relaxed);
    }

    // Release the barrier.
    parked_ = 0;
    gc_requested_.store(false, std::memory_order_relaxed);
    ++gc_generation_;
    gc_cv_.notify_all();
}

void
Package::setGcThreshold(size_t threshold)
{
    size_t clamped = std::max(threshold, kMinGcThreshold);
    gc_threshold_.store(clamped, std::memory_order_relaxed);
    min_gc_threshold_.store(clamped, std::memory_order_relaxed);
}

PackageStats
Package::stats() const
{
    PackageStats s;
    {
        std::lock_guard<std::mutex> lock(ctx_mu_);
        for (const auto &c : contexts_) {
            const LocalStats &l = c->stats;
            s.uniqueLookups +=
                l.uniqueLookups.load(std::memory_order_relaxed);
            s.uniqueHits += l.uniqueHits.load(std::memory_order_relaxed);
            s.multiplies += l.multiplies.load(std::memory_order_relaxed);
            s.additions += l.additions.load(std::memory_order_relaxed);
            s.computeLookups +=
                l.computeLookups.load(std::memory_order_relaxed);
            s.computeHits +=
                l.computeHits.load(std::memory_order_relaxed);
            s.mulEvictions +=
                l.mulEvictions.load(std::memory_order_relaxed);
            s.addEvictions +=
                l.addEvictions.load(std::memory_order_relaxed);
            s.ctEvictions +=
                l.ctEvictions.load(std::memory_order_relaxed);
        }
    }
    for (const UniqueShard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        s.uniqueRehashes += shard.rehashes;
    }
    s.gcRuns = gc_runs_.load(std::memory_order_relaxed);
    s.peakNodes = peak_nodes_.load(std::memory_order_relaxed);
    return s;
}

PackageStats
Package::threadStats() const
{
    PackageStats s;
    const LocalStats &l = context()->stats;
    s.uniqueLookups = l.uniqueLookups.load(std::memory_order_relaxed);
    s.uniqueHits = l.uniqueHits.load(std::memory_order_relaxed);
    s.multiplies = l.multiplies.load(std::memory_order_relaxed);
    s.additions = l.additions.load(std::memory_order_relaxed);
    s.computeLookups =
        l.computeLookups.load(std::memory_order_relaxed);
    s.computeHits = l.computeHits.load(std::memory_order_relaxed);
    s.mulEvictions = l.mulEvictions.load(std::memory_order_relaxed);
    s.addEvictions = l.addEvictions.load(std::memory_order_relaxed);
    s.ctEvictions = l.ctEvictions.load(std::memory_order_relaxed);
    for (const UniqueShard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        s.uniqueRehashes += shard.rehashes;
    }
    s.gcRuns = gc_runs_.load(std::memory_order_relaxed);
    s.peakNodes = peak_nodes_.load(std::memory_order_relaxed);
    return s;
}

void
Package::publishMetrics(const char *prefix) const
{
    obs::Sink *sink = obs::sink();
    if (sink == nullptr)
        return;
    obs::MetricsRegistry &m = sink->metrics();
    PackageStats st = stats();
    std::string p(prefix);
    m.setGauge(p + ".live_nodes", static_cast<double>(activeNodes()));
    m.setGauge(p + ".peak_nodes", static_cast<double>(st.peakNodes));
    m.setGauge(p + ".arena_nodes", static_cast<double>(arenaNodes()));
    m.setGauge(p + ".arena_bytes", static_cast<double>(arenaBytes()));
    m.setGauge(p + ".free_list_length",
               static_cast<double>(freeListLength()));
    m.setGauge(p + ".unique_capacity",
               static_cast<double>(uniqueCapacity()));
    m.setGauge(p + ".unique_load_factor", uniqueLoadFactor());
    m.setGauge(p + ".unique_rehashes",
               static_cast<double>(st.uniqueRehashes));
    m.setGauge(p + ".unique_lookups",
               static_cast<double>(st.uniqueLookups));
    m.setGauge(p + ".unique_hits", static_cast<double>(st.uniqueHits));
    m.setGauge(p + ".unique_hit_rate", st.uniqueHitRate());
    m.setGauge(p + ".compute_lookups",
               static_cast<double>(st.computeLookups));
    m.setGauge(p + ".compute_hits",
               static_cast<double>(st.computeHits));
    m.setGauge(p + ".compute_hit_rate", st.computeHitRate());
    m.setGauge(p + ".mul_evictions",
               static_cast<double>(st.mulEvictions));
    m.setGauge(p + ".add_evictions",
               static_cast<double>(st.addEvictions));
    m.setGauge(p + ".ct_evictions",
               static_cast<double>(st.ctEvictions));
    m.setGauge(p + ".multiplies", static_cast<double>(st.multiplies));
    m.setGauge(p + ".additions", static_cast<double>(st.additions));
    m.setGauge(p + ".gc_runs", static_cast<double>(st.gcRuns));

    // Shard-level lock-contention gauges: how often makeNode had to
    // wait for another worker, the contention signal that would argue
    // for more shards.
    size_t acquisitions = 0, contended = 0;
    for (const UniqueShard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        acquisitions += shard.lockAcquisitions;
        contended += shard.lockContended;
    }
    m.setGauge(p + ".shard.count",
               static_cast<double>(shards_.size()));
    m.setGauge(p + ".shard.lock_acquisitions",
               static_cast<double>(acquisitions));
    m.setGauge(p + ".shard.lock_contended",
               static_cast<double>(contended));
    m.setGauge(p + ".shard.contention_rate",
               acquisitions ? static_cast<double>(contended) /
                                  static_cast<double>(acquisitions)
                            : 0.0);
    m.setGauge(p + ".ctab.size", static_cast<double>(ctab_.size()));
    m.setGauge(p + ".ctab.slow_inserts",
               static_cast<double>(ctab_.slowInserts()));
}

} // namespace qsyn::dd
