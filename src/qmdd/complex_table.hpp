/**
 * @file
 * Interned complex values for the QMDD package.
 *
 * QMDD canonicity requires that equal edge weights be *identical*
 * objects, so weights are interned: every distinct complex value lives
 * exactly once in a ComplexTable and edges refer to it by pointer.
 * Lookups snap values within kWeightEps onto the existing
 * representative, which both makes equality O(1) (pointer compare) and
 * prevents floating-point drift from accumulating across long gate
 * products: each product step re-snaps onto canonical values.
 *
 * Thread safety (the shared-manager batch mode): probes are lock-free
 * — buckets are fixed-size atomic heads of append-only chains of
 * immutable entries — and only *first-time interning* of a new value
 * serializes on one insert mutex, under which the probe is repeated so
 * two racing threads can never create two representatives for the same
 * (or eps-adjacent) value. After warm-up the insert rate decays to
 * ~zero, so the hot path never touches a lock.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace qsyn::dd {

/** Tolerance under which two weights are considered the same value. */
inline constexpr double kWeightEps = 1e-10;

/** Interning table for complex edge weights. */
class ComplexTable
{
  public:
    ComplexTable();

    ComplexTable(const ComplexTable &) = delete;
    ComplexTable &operator=(const ComplexTable &) = delete;

    /**
     * Canonical pointer for `value`. Returns an existing entry when one
     * lies within kWeightEps (componentwise), otherwise inserts.
     * Safe to call from any number of threads concurrently.
     *
     * Hot constants (0, 1, ±1/√2, and the eighth-roots-of-unity phases
     * that T/S/H products cycle through) are pre-interned and matched
     * by a short inline scan before the grid probe, so the values that
     * dominate gate algebra resolve in O(1) without hashing.
     */
    const Cplx *
    lookup(const Cplx &value)
    {
        for (const HotEntry &hot : hot_) {
            if (approxEqual(hot.value, value, kWeightEps))
                return hot.entry;
        }
        return lookupSlow(value);
    }

    /** Canonical zero (cached; lookup(0) returns the same pointer). */
    const Cplx *zero() const { return zero_; }

    /** Canonical one. */
    const Cplx *one() const { return one_; }

    /** Canonical 1/√2 (the Hadamard weight). */
    const Cplx *sqrt1_2() const { return sqrt1_2_; }

    /** Number of distinct values interned so far. */
    size_t size() const { return size_.load(std::memory_order_relaxed); }

    /** Probes that had to take the insert lock (a new value, or a
     *  concurrent insert race); `insert_mu_` contention source. */
    size_t
    slowInserts() const
    {
        return slow_inserts_.load(std::memory_order_relaxed);
    }

  private:
    using BucketKey = std::uint64_t;

    /** A pre-interned hot constant checked before the grid probe. */
    struct HotEntry
    {
        Cplx value;
        const Cplx *entry;
    };

    /** One interned value in a bucket chain. `value` and `next` are
     *  written before the chain head publishes the entry (release
     *  store) and never change afterwards. */
    struct Entry
    {
        Cplx value;
        const Entry *next = nullptr;
    };

    /** Grid-probe path for values outside the hot set. */
    const Cplx *lookupSlow(const Cplx &value);

    /** Grid bucket of a coordinate (buckets are ~4x the tolerance). */
    static std::int64_t gridOf(double v);

    static BucketKey keyOf(std::int64_t gr, std::int64_t gi);

    /** Lock-free scan of the chain holding grid key `key`. Chains are
     *  shared across grid keys that collide on the table index, so
     *  matching is by value tolerance, never by key. */
    const Cplx *findInBucket(BucketKey key, const Cplx &value) const;

    /** Table slot of a grid key. */
    size_t slotOf(BucketKey key) const;

    /** Entry storage; deque keeps pointers stable across growth.
     *  Guarded by insert_mu_. */
    std::deque<Entry> entries_;
    /** Fixed-size bucket array: atomic heads of immutable chains.
     *  Readers traverse with acquire loads and never lock. */
    std::vector<std::atomic<const Entry *>> buckets_;
    size_t bucket_mask_;
    std::mutex insert_mu_;
    std::atomic<size_t> size_{0};
    std::atomic<size_t> slow_inserts_{0};
    const Cplx *zero_;
    const Cplx *one_;
    const Cplx *sqrt1_2_;
    std::vector<HotEntry> hot_;
};

} // namespace qsyn::dd
