/**
 * @file
 * Interned complex values for the QMDD package.
 *
 * QMDD canonicity requires that equal edge weights be *identical*
 * objects, so weights are interned: every distinct complex value lives
 * exactly once in a ComplexTable and edges refer to it by pointer.
 * Lookups snap values within kWeightEps onto the existing
 * representative, which both makes equality O(1) (pointer compare) and
 * prevents floating-point drift from accumulating across long gate
 * products: each product step re-snaps onto canonical values.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace qsyn::dd {

/** Tolerance under which two weights are considered the same value. */
inline constexpr double kWeightEps = 1e-10;

/** Interning table for complex edge weights. */
class ComplexTable
{
  public:
    ComplexTable();

    ComplexTable(const ComplexTable &) = delete;
    ComplexTable &operator=(const ComplexTable &) = delete;

    /**
     * Canonical pointer for `value`. Returns an existing entry when one
     * lies within kWeightEps (componentwise), otherwise inserts.
     *
     * Hot constants (0, 1, ±1/√2, and the eighth-roots-of-unity phases
     * that T/S/H products cycle through) are pre-interned and matched
     * by a short inline scan before the grid probe, so the values that
     * dominate gate algebra resolve in O(1) without hashing.
     */
    const Cplx *
    lookup(const Cplx &value)
    {
        for (const HotEntry &hot : hot_) {
            if (approxEqual(hot.value, value, kWeightEps))
                return hot.entry;
        }
        return lookupSlow(value);
    }

    /** Canonical zero (cached; lookup(0) returns the same pointer). */
    const Cplx *zero() const { return zero_; }

    /** Canonical one. */
    const Cplx *one() const { return one_; }

    /** Canonical 1/√2 (the Hadamard weight). */
    const Cplx *sqrt1_2() const { return sqrt1_2_; }

    /** Number of distinct values interned so far. */
    size_t size() const { return entries_.size(); }

  private:
    using BucketKey = std::uint64_t;

    /** A pre-interned hot constant checked before the grid probe. */
    struct HotEntry
    {
        Cplx value;
        const Cplx *entry;
    };

    /** Grid-probe path for values outside the hot set. */
    const Cplx *lookupSlow(const Cplx &value);

    /** Grid bucket of a coordinate (buckets are ~4x the tolerance). */
    static std::int64_t gridOf(double v);

    static BucketKey keyOf(std::int64_t gr, std::int64_t gi);

    const Cplx *findInBucket(BucketKey key, const Cplx &value) const;

    /** Entry storage; deque keeps pointers stable across growth. */
    std::deque<Cplx> entries_;
    std::unordered_map<BucketKey, std::vector<const Cplx *>> buckets_;
    const Cplx *zero_;
    const Cplx *one_;
    const Cplx *sqrt1_2_;
    std::vector<HotEntry> hot_;
};

} // namespace qsyn::dd
