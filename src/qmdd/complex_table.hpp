/**
 * @file
 * Interned complex values for the QMDD package.
 *
 * QMDD canonicity requires that equal edge weights be *identical*
 * objects, so weights are interned: every distinct complex value lives
 * exactly once in a ComplexTable and edges refer to it by pointer.
 * Lookups snap values within kWeightEps onto the existing
 * representative, which both makes equality O(1) (pointer compare) and
 * prevents floating-point drift from accumulating across long gate
 * products: each product step re-snaps onto canonical values.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace qsyn::dd {

/** Tolerance under which two weights are considered the same value. */
inline constexpr double kWeightEps = 1e-10;

/** Interning table for complex edge weights. */
class ComplexTable
{
  public:
    ComplexTable();

    ComplexTable(const ComplexTable &) = delete;
    ComplexTable &operator=(const ComplexTable &) = delete;

    /**
     * Canonical pointer for `value`. Returns an existing entry when one
     * lies within kWeightEps (componentwise), otherwise inserts.
     */
    const Cplx *lookup(const Cplx &value);

    /** Canonical zero (cached; lookup(0) returns the same pointer). */
    const Cplx *zero() const { return zero_; }

    /** Canonical one. */
    const Cplx *one() const { return one_; }

    /** Number of distinct values interned so far. */
    size_t size() const { return entries_.size(); }

  private:
    using BucketKey = std::uint64_t;

    /** Grid bucket of a coordinate (buckets are ~4x the tolerance). */
    static std::int64_t gridOf(double v);

    static BucketKey keyOf(std::int64_t gr, std::int64_t gi);

    const Cplx *findInBucket(BucketKey key, const Cplx &value) const;

    /** Entry storage; deque keeps pointers stable across growth. */
    std::deque<Cplx> entries_;
    std::unordered_map<BucketKey, std::vector<const Cplx *>> buckets_;
    const Cplx *zero_;
    const Cplx *one_;
};

} // namespace qsyn::dd
