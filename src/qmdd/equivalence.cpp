#include "qmdd/equivalence.hpp"

#include <algorithm>
#include <cmath>

#include "common/deadline.hpp"
#include "common/errors.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "qmdd/vector.hpp"

namespace qsyn::dd {

const char *
equivalenceName(Equivalence e)
{
    switch (e) {
      case Equivalence::Equivalent:
        return "equivalent";
      case Equivalence::EquivalentUpToPhase:
        return "equivalent up to global phase";
      case Equivalence::EquivalentApprox:
        return "equivalent (within tolerance)";
      case Equivalence::NotEquivalent:
        return "NOT equivalent";
      case Equivalence::Inconclusive:
        return "inconclusive (node budget exhausted)";
    }
    return "?";
}

bool
EquivalenceChecker::buildOnto(const Circuit &circuit, Edge start,
                              size_t budget, Edge *out,
                              const std::vector<Edge> &extra_roots)
{
    Edge e = start;
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Barrier)
            continue;
        QSYN_ASSERT(g.isUnitary(),
                    "equivalence checking requires unitary circuits");
        e = pkg_.multiply(pkg_.gateDD(g), e);
        // The per-gate safe point doubles as the cancellation poll:
        // a runaway verification dies here, with all invariants intact.
        deadline::check("qmdd equivalence check");
        if (pkg_.activeNodes() > pkg_.gcThreshold())
            pkg_.requestGc();
        if (pkg_.gcPending()) {
            std::vector<Edge> roots = extra_roots;
            roots.push_back(e);
            roots.push_back(start);
            pkg_.safePoint(roots);
        }
        if (budget != 0 && pkg_.activeNodes() > budget)
            return false;
    }
    *out = e;
    return true;
}

Equivalence
EquivalenceChecker::compareEdges(const Edge &a, const Edge &b,
                                 const EquivalenceOptions &opts)
{
    if (a == b)
        return Equivalence::Equivalent;
    if (a.node == b.node) {
        double ma = std::abs(*a.weight);
        double mb = std::abs(*b.weight);
        if (opts.upToGlobalPhase && approxEqual(ma, mb, kWeightEps))
            return Equivalence::EquivalentUpToPhase;
    }
    // Tolerant fallback: exact pointer canonicity can be lost to float
    // drift over very long gate products.
    if (pkg_.approxEqualEdges(a, b, opts.approxEps))
        return Equivalence::EquivalentApprox;
    if (opts.upToGlobalPhase && *b.weight != Cplx(0, 0)) {
        Cplx ratio = *a.weight / *b.weight;
        double mag = std::abs(ratio);
        if (approxEqual(mag, 1.0, 1e-6)) {
            Edge b_aligned = pkg_.scaled(b, ratio);
            if (pkg_.approxEqualEdges(a, b_aligned, opts.approxEps))
                return Equivalence::EquivalentApprox;
        }
    }
    return Equivalence::NotEquivalent;
}

Equivalence
EquivalenceChecker::checkMiter(const Circuit &a, const Circuit &b,
                               const EquivalenceOptions &opts)
{
    // Accumulate M = U_b . U_a^dagger, advancing whichever circuit is
    // proportionally behind so M stays near the identity throughout.
    Package::Session session(pkg_);
    Edge m = pkg_.identityEdge();
    size_t ia = 0, ib = 0;
    const size_t na = a.size(), nb = b.size();
    while (ia < na || ib < nb) {
        bool advance_b;
        if (ib >= nb) {
            advance_b = false;
        } else if (ia >= na) {
            advance_b = true;
        } else {
            // Compare progress fractions ib/nb vs ia/na without division.
            advance_b = ib * na <= ia * nb;
        }
        if (advance_b) {
            const Gate &g = b[ib++];
            if (g.kind() == GateKind::Barrier)
                continue;
            m = pkg_.multiply(pkg_.gateDD(g), m);
        } else {
            const Gate &g = a[ia++];
            if (g.kind() == GateKind::Barrier)
                continue;
            m = pkg_.multiply(m, pkg_.gateDD(g.inverse()));
        }
        deadline::check("qmdd miter check");
        if (pkg_.activeNodes() > pkg_.gcThreshold())
            pkg_.requestGc();
        if (pkg_.gcPending())
            pkg_.safePoint({m});
        if (opts.nodeBudget != 0 && pkg_.activeNodes() > opts.nodeBudget)
            return Equivalence::Inconclusive;
    }
    return compareEdges(m, pkg_.identityEdge(), opts);
}

namespace {

/**
 * Push random basis inputs (ancillas pinned to |0>) through both
 * circuits; true when a counterexample distinguishes them.
 */
bool
quickRefute(Package &pkg, const Circuit &a, const Circuit &b,
            const EquivalenceOptions &opts, size_t samples)
{
    Qubit width = std::max(a.numQubits(), b.numQubits());
    VectorEngine engine(pkg);
    Rng rng(0x5eedu);
    for (size_t trial = 0; trial < samples; ++trial) {
        deadline::check("quick-refute sampling");
        Circuit prep(width);
        for (Qubit q = 0; q < width; ++q) {
            bool is_ancilla =
                std::find(opts.ancillaWires.begin(),
                          opts.ancillaWires.end(),
                          q) != opts.ancillaWires.end();
            if (!is_ancilla && rng.chance(0.5))
                prep.addX(q);
        }
        Edge input = engine.applyCircuit(prep,
                                         engine.makeBasisState(0, width));
        Edge out_a = engine.applyCircuit(a, input);
        Edge out_b = engine.applyCircuit(b, input);
        double overlap = std::abs(engine.innerProduct(
            out_a, out_b, static_cast<int>(width)));
        if (std::abs(overlap - 1.0) > opts.approxEps)
            return true; // definite counterexample
    }
    return false;
}

} // namespace

Equivalence
EquivalenceChecker::check(const Circuit &a, const Circuit &b,
                          const EquivalenceOptions &opts)
{
    if (!a.isUnitary() || !b.isUnitary()) {
        throw UserError(
            "equivalence checking requires measurement-free circuits");
    }
    obs::Span span("qmdd.equivalence_check");
    span.arg("gates_a", static_cast<double>(a.size()));
    span.arg("gates_b", static_cast<double>(b.size()));
    // Hold a mutator session for the whole check so edges that span
    // phases (start, ea while eb builds, the compare temporaries) can
    // never be swept by a GC another worker triggers on a shared
    // package; sessions nest, so the inner safe points still park.
    Package::Session session(pkg_);
    if (opts.quickRefuteSamples > 0) {
        obs::Span refute_span("qmdd.quick_refute");
        if (quickRefute(pkg_, a, b, opts, opts.quickRefuteSamples))
            return Equivalence::NotEquivalent;
    }
    if (opts.useMiter && opts.ancillaWires.empty())
        return checkMiter(a, b, opts);

    Edge start = opts.ancillaWires.empty()
                     ? pkg_.identityEdge()
                     : pkg_.makeProjector(opts.ancillaWires);

    Edge ea;
    {
        obs::Span build_a("qmdd.build_reference");
        if (!buildOnto(a, start, opts.nodeBudget, &ea, {start}))
            return Equivalence::Inconclusive;
    }
    Edge eb;
    {
        obs::Span build_b("qmdd.build_candidate");
        if (!buildOnto(b, start, opts.nodeBudget, &eb, {start, ea}))
            return Equivalence::Inconclusive;
    }
    return compareEdges(ea, eb, opts);
}

} // namespace qsyn::dd
