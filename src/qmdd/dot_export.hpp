/**
 * @file
 * Graphviz DOT export of QMDDs — machine-drawn versions of the paper's
 * Fig. 1. Non-terminal vertices show their variable, the four outgoing
 * quadrant edges are labeled U00/U01/U10/U11 with their weights, and
 * zero edges are elided (as in the figure).
 */

#pragma once

#include <string>

#include "qmdd/package.hpp"

namespace qsyn::dd {

/** Options for DOT rendering. */
struct DotOptions
{
    /** Print edge weights (off renders a pure structure graph). */
    bool showWeights = true;
    /** Graph title, shown as a label. */
    std::string title;
};

/** Render the DD rooted at `e` as a DOT digraph. */
std::string toDot(Package &pkg, const Edge &e,
                  const DotOptions &options = {});

} // namespace qsyn::dd
