/**
 * @file
 * QMDD node and edge structures (Section 2.4 of the paper).
 *
 * A non-terminal node carries a variable (qubit level; level 0 is the
 * top / most significant qubit) and four outgoing edges which are, in
 * order, the U00, U01, U10, U11 quadrants of the transfer matrix the
 * node represents.
 *
 * Convention — identity skipping: an edge whose node's variable is
 * *larger* than the level where the edge appears represents an identity
 * on all skipped levels; an edge to the terminal node represents
 * weight x identity on every remaining level. This keeps a gate's QMDD
 * size independent of the total qubit count and is canonicalized by the
 * reduction rule in Package::makeNode.
 */

#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace qsyn::dd {

struct Node;

/** A weighted pointer to a node; the unit of sharing in the QMDD. */
struct Edge
{
    Node *node = nullptr;
    const Cplx *weight = nullptr;

    bool operator==(const Edge &o) const
    {
        return node == o.node && weight == o.weight;
    }
    bool operator!=(const Edge &o) const { return !(*this == o); }
};

/** Variable value of the terminal node. */
inline constexpr std::int32_t kTerminalVar = -1;

/** A QMDD vertex with its four quadrant edges. */
struct Node
{
    std::array<Edge, 4> e{};
    std::int32_t var = kTerminalVar;
    /** Garbage-collection mark epoch (see Package::collectGarbage). */
    std::uint32_t mark = 0;
    /**
     * Cached unique-table hash of (var, e). Lets the open-addressing
     * table rehash without touching children and reject probe
     * mismatches on one integer compare instead of a 4-edge compare.
     */
    size_t hash = 0;
    /** Intrusive free-list link while the node is reclaimed. */
    Node *next = nullptr;
};

/** True for the unique terminal vertex. */
inline bool
isTerminal(const Node *n)
{
    return n->var == kTerminalVar;
}

inline bool
isTerminal(const Edge &e)
{
    return isTerminal(e.node);
}

} // namespace qsyn::dd
