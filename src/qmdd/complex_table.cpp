#include "qmdd/complex_table.hpp"

#include <cmath>

namespace qsyn::dd {

namespace {

/** Bucket width; a value can only match entries in its own or an
 *  adjacent bucket, so the width must exceed 2 * kWeightEps. */
constexpr double kBucketWidth = 4 * kWeightEps;

} // namespace

ComplexTable::ComplexTable()
{
    // Intern the hot set through the slow path (hot_ is still empty),
    // then register the entries for the inline fast scan. Order is by
    // observed lookup frequency: normalization produces 1, pruned
    // quadrants produce 0, and H/T/S algebra cycles through ±1/√2 and
    // the eighth roots of unity.
    const double r = 1.0 / std::sqrt(2.0);
    zero_ = lookupSlow(Cplx(0.0, 0.0));
    one_ = lookupSlow(Cplx(1.0, 0.0));
    sqrt1_2_ = lookupSlow(Cplx(r, 0.0));
    hot_.push_back({Cplx(1.0, 0.0), one_});
    hot_.push_back({Cplx(0.0, 0.0), zero_});
    hot_.push_back({Cplx(r, 0.0), sqrt1_2_});
    for (const Cplx &v :
         {Cplx(-1.0, 0.0), Cplx(0.0, 1.0), Cplx(0.0, -1.0),
          Cplx(-r, 0.0), Cplx(0.0, r), Cplx(0.0, -r), Cplx(r, r),
          Cplx(r, -r), Cplx(-r, r), Cplx(-r, -r)})
        hot_.push_back({v, lookupSlow(v)});
}

std::int64_t
ComplexTable::gridOf(double v)
{
    return static_cast<std::int64_t>(std::floor(v / kBucketWidth));
}

ComplexTable::BucketKey
ComplexTable::keyOf(std::int64_t gr, std::int64_t gi)
{
    // Mix the two 32-ish bit grid coordinates into one 64-bit key.
    auto ur = static_cast<std::uint64_t>(gr) * 0x9e3779b97f4a7c15ull;
    auto ui = static_cast<std::uint64_t>(gi) * 0xc2b2ae3d27d4eb4full;
    return ur ^ (ui + 0x165667b19e3779f9ull + (ur << 6) + (ur >> 2));
}

const Cplx *
ComplexTable::findInBucket(BucketKey key, const Cplx &value) const
{
    auto it = buckets_.find(key);
    if (it == buckets_.end())
        return nullptr;
    for (const Cplx *entry : it->second) {
        if (approxEqual(*entry, value, kWeightEps))
            return entry;
    }
    return nullptr;
}

const Cplx *
ComplexTable::lookupSlow(const Cplx &value)
{
    std::int64_t gr = gridOf(value.real());
    std::int64_t gi = gridOf(value.imag());

    // A match within kWeightEps can only live in a neighboring bucket
    // when the coordinate sits within kWeightEps of that boundary; with
    // buckets 4x the tolerance wide, each axis needs at most one extra
    // probe, and usually none.
    auto offsets = [](double v, std::int64_t g,
                      std::int64_t (&out)[2]) -> int {
        out[0] = 0;
        double lo = static_cast<double>(g) * kBucketWidth;
        double frac = v - lo;
        if (frac < kWeightEps) {
            out[1] = -1;
            return 2;
        }
        if (frac > kBucketWidth - kWeightEps) {
            out[1] = 1;
            return 2;
        }
        return 1;
    };
    std::int64_t drs[2], dis[2];
    int nr = offsets(value.real(), gr, drs);
    int ni = offsets(value.imag(), gi, dis);
    for (int r = 0; r < nr; ++r) {
        for (int i = 0; i < ni; ++i) {
            if (const Cplx *hit = findInBucket(
                    keyOf(gr + drs[r], gi + dis[i]), value)) {
                return hit;
            }
        }
    }
    entries_.push_back(value);
    const Cplx *inserted = &entries_.back();
    buckets_[keyOf(gr, gi)].push_back(inserted);
    return inserted;
}

} // namespace qsyn::dd
