#include "qmdd/complex_table.hpp"

#include <cmath>

namespace qsyn::dd {

namespace {

/** Bucket width; a value can only match entries in its own or an
 *  adjacent bucket, so the width must exceed 2 * kWeightEps. */
constexpr double kBucketWidth = 4 * kWeightEps;

/** Bucket-array size. Fixed (lock-free readers cannot tolerate a
 *  resize); grid keys that collide simply share a chain, and the
 *  tolerance match filters them. 16k slots keep chains at ~1 entry for
 *  typical workloads (a few thousand distinct weights). */
constexpr size_t kBucketSlots = size_t{1} << 14;

} // namespace

ComplexTable::ComplexTable()
    : buckets_(kBucketSlots), bucket_mask_(kBucketSlots - 1)
{
    for (std::atomic<const Entry *> &head : buckets_)
        head.store(nullptr, std::memory_order_relaxed);
    // Intern the hot set through the slow path (hot_ is still empty),
    // then register the entries for the inline fast scan. Order is by
    // observed lookup frequency: normalization produces 1, pruned
    // quadrants produce 0, and H/T/S algebra cycles through ±1/√2 and
    // the eighth roots of unity.
    const double r = 1.0 / std::sqrt(2.0);
    zero_ = lookupSlow(Cplx(0.0, 0.0));
    one_ = lookupSlow(Cplx(1.0, 0.0));
    sqrt1_2_ = lookupSlow(Cplx(r, 0.0));
    hot_.push_back({Cplx(1.0, 0.0), one_});
    hot_.push_back({Cplx(0.0, 0.0), zero_});
    hot_.push_back({Cplx(r, 0.0), sqrt1_2_});
    for (const Cplx &v :
         {Cplx(-1.0, 0.0), Cplx(0.0, 1.0), Cplx(0.0, -1.0),
          Cplx(-r, 0.0), Cplx(0.0, r), Cplx(0.0, -r), Cplx(r, r),
          Cplx(r, -r), Cplx(-r, r), Cplx(-r, -r)})
        hot_.push_back({v, lookupSlow(v)});
}

std::int64_t
ComplexTable::gridOf(double v)
{
    return static_cast<std::int64_t>(std::floor(v / kBucketWidth));
}

ComplexTable::BucketKey
ComplexTable::keyOf(std::int64_t gr, std::int64_t gi)
{
    // Mix the two 32-ish bit grid coordinates into one 64-bit key.
    auto ur = static_cast<std::uint64_t>(gr) * 0x9e3779b97f4a7c15ull;
    auto ui = static_cast<std::uint64_t>(gi) * 0xc2b2ae3d27d4eb4full;
    return ur ^ (ui + 0x165667b19e3779f9ull + (ur << 6) + (ur >> 2));
}

size_t
ComplexTable::slotOf(BucketKey key) const
{
    // The key is already well mixed; fold the high half in so the
    // mask sees all of it.
    return static_cast<size_t>(key ^ (key >> 32)) & bucket_mask_;
}

const Cplx *
ComplexTable::findInBucket(BucketKey key, const Cplx &value) const
{
    const Entry *e =
        buckets_[slotOf(key)].load(std::memory_order_acquire);
    for (; e != nullptr; e = e->next) {
        if (approxEqual(e->value, value, kWeightEps))
            return &e->value;
    }
    return nullptr;
}

const Cplx *
ComplexTable::lookupSlow(const Cplx &value)
{
    std::int64_t gr = gridOf(value.real());
    std::int64_t gi = gridOf(value.imag());

    // A match within kWeightEps can only live in a neighboring bucket
    // when the coordinate sits within kWeightEps of that boundary; with
    // buckets 4x the tolerance wide, each axis needs at most one extra
    // probe, and usually none.
    auto offsets = [](double v, std::int64_t g,
                      std::int64_t (&out)[2]) -> int {
        out[0] = 0;
        double lo = static_cast<double>(g) * kBucketWidth;
        double frac = v - lo;
        if (frac < kWeightEps) {
            out[1] = -1;
            return 2;
        }
        if (frac > kBucketWidth - kWeightEps) {
            out[1] = 1;
            return 2;
        }
        return 1;
    };
    std::int64_t drs[2], dis[2];
    int nr = offsets(value.real(), gr, drs);
    int ni = offsets(value.imag(), gi, dis);
    for (int r = 0; r < nr; ++r) {
        for (int i = 0; i < ni; ++i) {
            if (const Cplx *hit = findInBucket(
                    keyOf(gr + drs[r], gi + dis[i]), value)) {
                return hit;
            }
        }
    }

    // First sighting of this value: serialize the insert and re-probe
    // under the lock so a racing thread that interned the same (or an
    // eps-adjacent) value moments ago wins — one representative per
    // neighborhood, no matter the interleaving.
    std::lock_guard<std::mutex> lock(insert_mu_);
    slow_inserts_.fetch_add(1, std::memory_order_relaxed);
    for (int r = 0; r < nr; ++r) {
        for (int i = 0; i < ni; ++i) {
            if (const Cplx *hit = findInBucket(
                    keyOf(gr + drs[r], gi + dis[i]), value)) {
                return hit;
            }
        }
    }
    entries_.push_back(Entry{value, nullptr});
    Entry *inserted = &entries_.back();
    std::atomic<const Entry *> &head = buckets_[slotOf(keyOf(gr, gi))];
    inserted->next = head.load(std::memory_order_relaxed);
    // Publish: entry fields are complete before the release store, so
    // a lock-free reader that sees the new head sees a whole entry.
    head.store(inserted, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    return &inserted->value;
}

} // namespace qsyn::dd
