/**
 * @file
 * Vector QMDDs: decision-diagram state vectors over the same package,
 * node store, and canonicity rules as the matrix DDs.
 *
 * A vector node has two outgoing edges (the |0> and |1> cofactors of
 * its qubit); an edge skipping levels means the skipped qubits are in
 * |0> ... no — skipped levels are *factored out* |0/1-independent?
 * Convention here: a vector edge to the terminal represents the
 * all-|0> state of every remaining qubit (weight x |0...0>), and an
 * edge skipping levels means those qubits are |0>. This makes basis
 * states O(#ones) nodes and lets DD simulation scale to the 96-qubit
 * compiled circuits, far beyond the 2^n dense simulator.
 */

#pragma once

#include "qmdd/package.hpp"

namespace qsyn::dd {

/**
 * Vector-DD engine layered on a Package. Vector nodes reuse the
 * 4-edge Node structure with e[2] and e[3] unused (zero), so the
 * package's unique table, interning and GC apply unchanged; matrix
 * and vector nodes never collide because vector nodes always carry a
 * zero e[2]/e[3] signature distinct from any reduced matrix node's.
 */
class VectorEngine
{
  public:
    explicit VectorEngine(Package &pkg) : pkg_(pkg) {}

    Package &package() { return pkg_; }

    /** |basis> over `num_qubits` qubits (qubit 0 = MSB of the index). */
    Edge makeBasisState(std::uint64_t basis, Qubit num_qubits);

    /** Vector node constructor: cofactors for qubit `var` = 0 / 1. */
    Edge makeVectorNode(std::int32_t var, const Edge &zero_cof,
                        const Edge &one_cof);

    /** Apply a gate (matrix DD semantics) to a state vector. */
    Edge applyGate(const Gate &gate, const Edge &state);

    /** Apply a whole circuit (barriers skipped; measures rejected). */
    Edge applyCircuit(const Circuit &circuit, const Edge &state);

    /** Amplitude <index|state> for an n-qubit context. */
    Cplx amplitude(const Edge &state, std::uint64_t index,
                   int num_qubits);

    /** Inner product <a|b> (same qubit context). */
    Cplx innerProduct(const Edge &a, const Edge &b, int num_qubits);

    /** Squared norm of the state. */
    double normSquared(const Edge &state, int num_qubits);

  private:
    /** Multiply a matrix edge by a vector edge. */
    Edge matVec(const Edge &mat, const Edge &vec);
    Edge matVecNodes(Node *mat, Node *vec);

    /** Vector cofactor of `vec` at level `var` for bit value b. */
    Edge vectorChild(const Edge &vec, int b, std::int32_t var);

    Package &pkg_;
    std::unordered_map<const Node *,
                       std::unordered_map<const Node *, Edge>>
        matvec_cache_;
};

} // namespace qsyn::dd
