/**
 * @file
 * QMDD-based formal equivalence checking (the paper's built-in
 * verification step): the technology-independent input circuit and the
 * technology-dependent compiled output must represent the same unitary,
 * which for canonical QMDDs means they share the same root edge.
 *
 * Extensions beyond the paper's direct comparison:
 *  - ancilla-aware checking: the mapped circuit may use extra device
 *    wires as clean ancillas; we verify U_mapped . P == (U_orig x I) . P
 *    where P projects those wires onto |0> ("acts identically whenever
 *    ancillas start clean, and returns them clean");
 *  - projected construction for scalability: when ancillas are present
 *    the projector is applied *first* and gates accumulate onto it, so
 *    intermediate DDs stay close to the reachable subspace;
 *  - an alternating-miter mode that accumulates U_b . U_a^dagger
 *    gate-by-gate, keeping the intermediate DD near the identity;
 *  - a node budget that yields Inconclusive instead of thrashing.
 */

#pragma once

#include <vector>

#include "ir/circuit.hpp"
#include "qmdd/package.hpp"

namespace qsyn::dd {

/** Outcome of an equivalence query. */
enum class Equivalence
{
    Equivalent,            ///< identical canonical QMDDs
    EquivalentUpToPhase,   ///< same nodes; root weights differ by a phase
    EquivalentApprox,      ///< entrywise equal within the approx epsilon
    NotEquivalent,         ///< matrices differ
    Inconclusive           ///< node budget exhausted before an answer
};

/** Printable name of an Equivalence value. */
const char *equivalenceName(Equivalence e);

/** True for any of the three "yes" verdicts. */
inline bool
isEquivalent(Equivalence e)
{
    return e == Equivalence::Equivalent ||
           e == Equivalence::EquivalentUpToPhase ||
           e == Equivalence::EquivalentApprox;
}

/** Options controlling an equivalence query. */
struct EquivalenceOptions
{
    /** Accept circuits equal up to a global phase. */
    bool upToGlobalPhase = true;
    /** Wires (of the wider register) required to be |0> before and
     *  after: clean ancillas and idle device qubits. */
    std::vector<Qubit> ancillaWires;
    /** Abort with Inconclusive past this many live nodes (0 = off). */
    size_t nodeBudget = 0;
    /** Use the alternating-miter scheme (no-ancilla case only). */
    bool useMiter = false;
    /** Tolerance for the EquivalentApprox fallback verdict. */
    double approxEps = 1e-6;
    /**
     * Before the full matrix comparison, push this many random basis
     * states (ancilla wires held at |0>) through both circuits with
     * the vector engine and refute on the first mismatch. A cheap
     * counterexample short-circuits the expensive canonical build;
     * agreement proves nothing and the full check still runs.
     */
    size_t quickRefuteSamples = 0;
};

/** QMDD equivalence checker bound to a package. */
class EquivalenceChecker
{
  public:
    explicit EquivalenceChecker(Package &pkg) : pkg_(pkg) {}

    /**
     * Compare two unitary circuits. The narrower circuit is implicitly
     * padded with identity wires up to the wider register.
     */
    Equivalence check(const Circuit &a, const Circuit &b,
                      const EquivalenceOptions &opts = {});

  private:
    /** Left-multiply every gate of `circuit` onto `start`. Returns
     *  false (leaving *out untouched) when the budget is exceeded. */
    bool buildOnto(const Circuit &circuit, Edge start, size_t budget,
                   Edge *out, const std::vector<Edge> &extra_roots);

    Equivalence compareEdges(const Edge &a, const Edge &b,
                             const EquivalenceOptions &opts);

    Equivalence checkMiter(const Circuit &a, const Circuit &b,
                           const EquivalenceOptions &opts);

    Package &pkg_;
};

} // namespace qsyn::dd
