#include "qmdd/vector.hpp"

#include <map>

#include "common/errors.hpp"

namespace qsyn::dd {

Edge
VectorEngine::makeVectorNode(std::int32_t var, const Edge &zero_cof,
                             const Edge &one_cof)
{
    // Vector skip rule: a zero |1>-cofactor means "this qubit is |0>",
    // which the skipping edge encodes implicitly (this also folds the
    // all-zero case into the zero edge).
    if (approxZero(*one_cof.weight))
        return zero_cof;
    return pkg_.makeNode(var, {zero_cof, one_cof, pkg_.zeroEdge(),
                               pkg_.zeroEdge()});
}

Edge
VectorEngine::makeBasisState(std::uint64_t basis, Qubit num_qubits)
{
    Edge e = pkg_.identityEdge(); // terminal 1 = |0...0> of the rest
    for (Qubit level = num_qubits; level-- > 0;) {
        // Qubits beyond the 64-bit basis index are implicitly |0>.
        unsigned shift = static_cast<unsigned>(num_qubits - 1 - level);
        bool bit = shift < 64 && ((basis >> shift) & 1);
        if (bit) {
            e = makeVectorNode(static_cast<std::int32_t>(level),
                               pkg_.zeroEdge(), e);
        }
        // bit == 0 is the implicit skip; nothing to build.
    }
    return e;
}

Edge
VectorEngine::vectorChild(const Edge &vec, int b, std::int32_t var)
{
    if (isTerminal(vec.node) || vec.node->var > var) {
        // Skipped level: the qubit is |0>.
        return b == 0 ? vec : pkg_.zeroEdge();
    }
    QSYN_ASSERT(vec.node->var == var, "vectorChild level mismatch");
    Edge stored = vec.node->e[b];
    if (approxZero(*stored.weight))
        return pkg_.zeroEdge();
    if (approxOne(*vec.weight))
        return stored;
    return pkg_.scaled(stored, *vec.weight);
}

Edge
VectorEngine::matVec(const Edge &mat, const Edge &vec)
{
    if (approxZero(*mat.weight) || approxZero(*vec.weight))
        return pkg_.zeroEdge();
    Edge r = matVecNodes(mat.node, vec.node);
    return pkg_.scaled(r, *mat.weight * *vec.weight);
}

Edge
VectorEngine::matVecNodes(Node *mat, Node *vec)
{
    if (isTerminal(mat))
        return Edge{vec, pkg_.identityEdge().weight}; // identity matrix

    auto &row = matvec_cache_[mat];
    auto hit = row.find(vec);
    if (hit != row.end())
        return hit->second;

    std::int32_t top = mat->var;
    if (!isTerminal(vec))
        top = std::min(top, vec->var);

    Edge em{mat, pkg_.identityEdge().weight};
    Edge ev{vec, pkg_.identityEdge().weight};
    Edge out[2];
    for (int i = 0; i < 2; ++i) {
        Edge p0 = matVec(pkg_.child(em, i, 0, top),
                         vectorChild(ev, 0, top));
        Edge p1 = matVec(pkg_.child(em, i, 1, top),
                         vectorChild(ev, 1, top));
        out[i] = pkg_.add(p0, p1);
    }
    Edge result = makeVectorNode(top, out[0], out[1]);
    row.emplace(vec, result);
    return result;
}

Edge
VectorEngine::applyGate(const Gate &gate, const Edge &state)
{
    if (gate.kind() == GateKind::Barrier)
        return state;
    return matVec(pkg_.gateDD(gate), state);
}

Edge
VectorEngine::applyCircuit(const Circuit &circuit, const Edge &state)
{
    Edge e = state;
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Barrier)
            continue;
        QSYN_ASSERT(g.isUnitary(),
                    "vector simulation requires unitary gates");
        if (pkg_.activeNodes() > pkg_.gcThreshold()) {
            pkg_.collectGarbage({e});
            matvec_cache_.clear();
        }
        e = applyGate(g, e);
    }
    return e;
}

Cplx
VectorEngine::amplitude(const Edge &state, std::uint64_t index,
                        int num_qubits)
{
    Cplx w = *state.weight;
    const Node *p = state.node;
    for (int v = 0; v < num_qubits; ++v) {
        // Index bits beyond 64 qubits are implicitly 0.
        int shift = num_qubits - 1 - v;
        int bit = shift < 64
                      ? static_cast<int>((index >> shift) & 1)
                      : 0;
        if (isTerminal(p) || p->var > v) {
            if (bit != 0)
                return Cplx(0, 0); // skipped qubits are |0>
            continue;
        }
        const Edge &next = p->e[bit];
        if (approxZero(*next.weight))
            return Cplx(0, 0);
        w *= *next.weight;
        p = next.node;
    }
    QSYN_ASSERT(isTerminal(p), "state deeper than the qubit context");
    return w;
}

Cplx
VectorEngine::innerProduct(const Edge &a, const Edge &b, int num_qubits)
{
    (void)num_qubits;
    // <a|b> over node pairs with the weights factored out.
    struct Rec
    {
        VectorEngine *self;
        std::map<std::pair<const Node *, const Node *>, Cplx> memo;

        Cplx
        operator()(const Node *na, const Node *nb)
        {
            if (isTerminal(na) && isTerminal(nb))
                return Cplx(1, 0);
            auto key = std::make_pair(na, nb);
            auto it = memo.find(key);
            if (it != memo.end())
                return it->second;
            std::int32_t top = kTerminalVar;
            if (!isTerminal(na))
                top = na->var;
            if (!isTerminal(nb))
                top = top == kTerminalVar
                          ? nb->var
                          : std::min(top, nb->var);
            Edge ea{const_cast<Node *>(na),
                    self->pkg_.identityEdge().weight};
            Edge eb{const_cast<Node *>(nb),
                    self->pkg_.identityEdge().weight};
            Cplx acc(0, 0);
            for (int bit = 0; bit < 2; ++bit) {
                Edge ca = self->vectorChild(ea, bit, top);
                Edge cb = self->vectorChild(eb, bit, top);
                if (approxZero(*ca.weight) || approxZero(*cb.weight))
                    continue;
                acc += std::conj(*ca.weight) * *cb.weight *
                       (*this)(ca.node, cb.node);
            }
            memo.emplace(key, acc);
            return acc;
        }
    } rec{this, {}};
    return std::conj(*a.weight) * *b.weight * rec(a.node, b.node);
}

double
VectorEngine::normSquared(const Edge &state, int num_qubits)
{
    return innerProduct(state, state, num_qubits).real();
}

} // namespace qsyn::dd
