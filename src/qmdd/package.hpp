/**
 * @file
 * The QMDD package: canonical decision-diagram representation of
 * quantum transfer matrices (Miller & Thornton, ISMVL 2006; Niemann et
 * al., TCAD 2016), used by the compiler for formal equivalence checking.
 *
 * All nodes live in one Package; canonicity is global to the package,
 * so two circuits compare equal iff building them yields the *same*
 * root edge (pointer + weight pointer). See node.hpp for the
 * identity-skipping edge convention.
 *
 * Hot-path design (see docs/performance.md):
 *  - the unique table is *sharded by node hash* into independently
 *    locked stripes; each shard is open-addressing with linear probing
 *    and grows on a load-factor trigger. Rehashing moves only the
 *    shard's slot array, never the nodes (each shard owns its node
 *    arena), so Node* identity — and thus canonicity — survives every
 *    resize;
 *  - the mul/add/ct compute caches are 2-way set-associative with a
 *    one-bit age per way and are **per thread** (a WorkerContext is
 *    created lazily for every thread that touches the package), so the
 *    single-thread hot path probes them without any synchronization;
 *  - complex-weight interning (ComplexTable) probes lock-free and
 *    serializes only first-time inserts, so weight-pointer canonicity
 *    holds across threads.
 *
 * Concurrency contract: a Package may be used from many threads at
 * once (the `--share-manager` batch mode). Node creation and matrix
 * algebra are safe anywhere, but garbage collection is a stop-the-
 * world mark-and-sweep coordinated at *safe points*: every thread that
 * runs long gate-product loops must hold a Package::Session and call
 * safePoint() with its live roots between gates (buildCircuit and the
 * EquivalenceChecker do this internally). GC runs only when every
 * active session is parked at a safe point, with the union of parked
 * roots kept alive. Single-threaded use degenerates to the old
 * behavior: the lone session reaches its safe point and sweeps inline.
 */

#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/matrix.hpp"
#include "qmdd/complex_table.hpp"
#include "qmdd/node.hpp"

namespace qsyn::dd {

/** Counter snapshot exposed for the micro-benchmarks, tests, and the
 *  obs metrics surface (`qmdd.*`). Plain values: the live counters are
 *  kept per worker thread (and per shard) and merged into this struct
 *  on demand, so a snapshot is exact even while other threads run. */
struct PackageStats
{
    size_t uniqueLookups = 0;
    size_t uniqueHits = 0;
    /** Times a unique-table shard grew (slots doubled, nodes untouched). */
    size_t uniqueRehashes = 0;
    size_t multiplies = 0;
    size_t additions = 0;
    /** Compute-cache probes (mul + add + conjugate-transpose). */
    size_t computeLookups = 0;
    size_t computeHits = 0;
    /** Valid compute-cache entries overwritten by a different key. */
    size_t mulEvictions = 0;
    size_t addEvictions = 0;
    size_t ctEvictions = 0;
    size_t gcRuns = 0;
    /** High-water mark of *live* nodes: tracked at unique-table insert,
     *  so hits and free-list recycling do not inflate it. */
    size_t peakNodes = 0;

    /** Fraction of unique-table lookups that found an existing node. */
    double
    uniqueHitRate() const
    {
        return uniqueLookups
                   ? static_cast<double>(uniqueHits) /
                         static_cast<double>(uniqueLookups)
                   : 0.0;
    }

    /** Fraction of compute-cache probes that hit. */
    double
    computeHitRate() const
    {
        return computeLookups
                   ? static_cast<double>(computeHits) /
                         static_cast<double>(computeLookups)
                   : 0.0;
    }
};

/** Construction-time tuning knobs. The defaults fit one compile of a
 *  mid-size circuit; tests shrink them to force rehash/GC paths. */
struct PackageConfig
{
    /** Initial unique-table slot count, summed across shards (each
     *  shard rounds its slice up to a power of 2, with a small floor).
     *  Shards grow past this on demand and never shrink below. */
    size_t initialUniqueCapacity = size_t{1} << 16;
    /** Unique-table shards (rounded up to a power of 2). More shards
     *  mean less lock contention between concurrent workers; 1 gives
     *  the classic single-table layout. */
    size_t uniqueShards = 16;
    /** Sets per compute cache (each set holds 2 ways, per thread). */
    size_t mulCacheSets = size_t{1} << 16;
    size_t addCacheSets = size_t{1} << 15;
    size_t ctCacheSets = size_t{1} << 12;
    /** Live-node threshold that triggers automatic GC. */
    size_t gcThreshold = size_t{1} << 20;
};

/** Owner of all QMDD nodes plus the unique/compute tables. */
class Package
{
  public:
    Package();
    explicit Package(const PackageConfig &config);
    ~Package();

    Package(const Package &) = delete;
    Package &operator=(const Package &) = delete;

    /**
     * RAII mark that the current thread is actively mutating the
     * package (a "mutator"). Garbage collection waits until every
     * session is parked at a safePoint(), so threads that share a
     * package must wrap their gate-product loops in a Session (or use
     * buildCircuit / EquivalenceChecker, which do). Reentrant per
     * thread; cheap when nested.
     */
    class Session
    {
      public:
        explicit Session(Package &pkg) : pkg_(pkg)
        {
            pkg_.beginSession();
        }
        ~Session() { pkg_.endSession(); }
        Session(const Session &) = delete;
        Session &operator=(const Session &) = delete;

      private:
        Package &pkg_;
    };

    /** @name Leaf edges */
    /// @{
    /** The zero matrix (of any dimension). */
    Edge zeroEdge();
    /** The identity (of any dimension) — terminal with weight 1. */
    Edge identityEdge();
    /** w x identity. */
    Edge terminalEdge(const Cplx &w);
    /// @}

    /**
     * Canonical node constructor: applies zero-edge canonicalization,
     * the identity-skip reduction, weight normalization, and the unique
     * table. `edges[i]` is quadrant U_{rc} with i = 2r + c. Children
     * must be at variables strictly greater than `var`. Thread-safe.
     */
    Edge makeNode(std::int32_t var, const std::array<Edge, 4> &edges);

    /** @name Matrix algebra (thread-safe; memoized per thread) */
    /// @{
    Edge multiply(const Edge &a, const Edge &b);
    Edge add(const Edge &a, const Edge &b);
    Edge conjugateTranspose(const Edge &a);
    /** Edge with weight scaled by `factor`. */
    Edge scaled(const Edge &e, const Cplx &factor);
    /**
     * Quadrant (r, c) of matrix edge `x` viewed at level `var`: the
     * stored child when x's node sits exactly at `var`, otherwise the
     * identity-skip expansion (diagonal continues, off-diagonal is
     * zero). Exposed for the vector engine.
     */
    Edge child(const Edge &x, int r, int c, std::int32_t var);
    /// @}

    /** @name Gate and circuit construction */
    /// @{
    /** DD of a base 2x2 unitary with positive controls. */
    Edge makeGateDD(const Mat2 &u, const std::vector<Qubit> &controls,
                    Qubit target);
    /** DD of a (controlled) SWAP. */
    Edge makeSwapDD(const std::vector<Qubit> &controls, Qubit a, Qubit b);
    /** DD of an arbitrary IR gate (must be unitary). */
    Edge gateDD(const Gate &gate);
    /** DD of a whole circuit: product of its gate DDs. Opens a Session
     *  and hits a GC safe point after every gate. */
    Edge buildCircuit(const Circuit &circuit);
    /** Projector |0><0| on `zero_wires`, identity on all other wires. */
    Edge makeProjector(const std::vector<Qubit> &zero_wires);
    /// @}

    /** @name Inspection */
    /// @{
    /** Matrix entry at (row, col) for an n-qubit context. Qubit 0 is
     *  the most significant bit of the index. */
    Cplx getEntry(const Edge &e, std::uint64_t row, std::uint64_t col,
                  int num_qubits);
    /** Distinct nodes reachable from `e` (terminal excluded). */
    size_t countNodes(const Edge &e);
    /** Largest entry magnitude of the represented matrix. */
    double maxMagnitude(const Edge &e);
    /** Nodes currently alive across all unique-table shards. */
    size_t
    activeNodes() const
    {
        return live_nodes_.load(std::memory_order_relaxed);
    }
    /** Live-node high-water mark (see PackageStats::peakNodes). */
    size_t
    peakNodes() const
    {
        return peak_nodes_.load(std::memory_order_relaxed);
    }
    /** Current unique-table slot count, summed over shards. */
    size_t uniqueCapacity() const;
    /** Number of unique-table shards. */
    size_t uniqueShards() const { return shards_.size(); }
    /** Live nodes / slots; each shard's resize trigger keeps its own
     *  ratio under the internal maximum (kMaxLoadPercent). */
    double uniqueLoadFactor() const;
    /** Nodes ever allocated from the shard arenas (live + recycled). */
    size_t arenaNodes() const;
    /** Bytes the node arenas hold (allocator high-water, since arenas
     *  never shrink); the per-compile resource accounting's
     *  `qmdd_arena_bytes` source. */
    size_t arenaBytes() const;
    /** Reclaimed nodes awaiting reuse, summed over shards. */
    size_t freeListLength() const;
    /** Exact merged counter snapshot: per-thread counters summed over
     *  every worker context plus the shard/global counters. */
    PackageStats stats() const;
    /** The calling thread's share of the counters (its worker context)
     *  plus the global peak/GC/rehash values. Lets a shared-manager
     *  compile attribute table traffic to itself by diffing two
     *  snapshots around its verification. */
    PackageStats threadStats() const;
    /**
     * Publish the package's counters as `<prefix>.*` gauges on the
     * installed obs sink: live/peak nodes, table lookup/hit counts and
     * rates, allocator internals (arena size, free-list length), table
     * capacity/load factor, per-cache eviction counts, and the
     * `<prefix>.shard.*` lock-contention gauges. No-op when
     * observability is off; last package published wins on collisions.
     */
    void publishMetrics(const char *prefix = "qmdd") const;
    /// @}

    /**
     * Tolerant structural comparison: true when the two matrices agree
     * entrywise within eps (computed as max|A - B| < eps). Used as a
     * fallback when float drift breaks exact pointer canonicity.
     */
    bool approxEqualEdges(const Edge &a, const Edge &b, double eps = 1e-6);

    /** @name Garbage collection */
    /// @{
    /**
     * Stop-the-world mark-and-sweep. Everything reachable from `roots`
     * (plus the published roots of any session parked at a safe point)
     * survives; every thread's compute caches are cleared. Safe to
     * call directly only when no *other* thread is mutating the
     * package; concurrent callers use requestGc() + safePoint().
     */
    void collectGarbage(const std::vector<Edge> &roots);

    /** Ask for a GC at the next point every active session is parked.
     *  Cheap and idempotent. */
    void requestGc();

    /** True when a GC has been requested and not yet run. The hot
     *  per-gate check: one relaxed load. */
    bool
    gcPending() const
    {
        return gc_requested_.load(std::memory_order_relaxed);
    }

    /**
     * Park the calling session with its live `roots` until the
     * requested GC has run (the last session to park performs the
     * sweep inline). Call between gates whenever gcPending(); no-op if
     * the request was already served. Must hold a Session.
     */
    void safePoint(const std::vector<Edge> &roots);

    /** Live-node threshold that triggers automatic GC (clamped to a
     *  small floor so it can never be set to a thrash-inducing zero). */
    void setGcThreshold(size_t threshold);
    size_t
    gcThreshold() const
    {
        return gc_threshold_.load(std::memory_order_relaxed);
    }
    /// @}

  private:
    /** One way of a 2-way set-associative product-cache set. `age`
     *  is the pseudo-LRU bit: 0 = most recently touched in its set. */
    struct MulSlot
    {
        const Node *a = nullptr;
        const Node *b = nullptr;
        Edge result;
        std::uint8_t age = 0;
    };
    /** One way of the 2-way sum cache. */
    struct AddSlot
    {
        Edge a{};
        Edge b{};
        Edge result;
        bool valid = false;
        std::uint8_t age = 0;
    };
    /** One way of the 2-way conjugate-transpose cache. */
    struct CtSlot
    {
        const Node *a = nullptr;
        Edge result;
        std::uint8_t age = 0;
    };

    /** Monotonic counters owned by one worker thread. Relaxed atomics:
     *  increments are uncontended (own cache line), and stats() reads
     *  them race-free while the owner keeps running. */
    struct LocalStats
    {
        std::atomic<size_t> uniqueLookups{0};
        std::atomic<size_t> uniqueHits{0};
        std::atomic<size_t> multiplies{0};
        std::atomic<size_t> additions{0};
        std::atomic<size_t> computeLookups{0};
        std::atomic<size_t> computeHits{0};
        std::atomic<size_t> mulEvictions{0};
        std::atomic<size_t> addEvictions{0};
        std::atomic<size_t> ctEvictions{0};

        void
        bump(std::atomic<size_t> &c)
        {
            c.store(c.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
        }
    };

    /**
     * Per-thread state: the compute caches, the maxMagnitude memo, the
     * thread's counters, and its GC-session bookkeeping. Created
     * lazily the first time a thread touches the package; owned by the
     * package, found via a thread-local map keyed by package serial.
     */
    struct alignas(64) WorkerContext
    {
        std::vector<MulSlot> mul_cache;
        std::vector<AddSlot> add_cache;
        std::vector<CtSlot> ct_cache;
        std::unordered_map<const Node *, double> mag_cache;
        LocalStats stats;
        /** Session nesting depth; touched only by the owner thread. */
        int sessionDepth = 0;
        /** Roots published while parked at a safe point (gc_mu_). */
        std::vector<Edge> parkedRoots;
        bool parked = false; ///< guarded by gc_mu_
    };

    /** One stripe of the unique table: an open-addressing slot array
     *  plus the arena and free list for the nodes it owns. Padded so
     *  neighboring shards' locks do not false-share. */
    struct alignas(64) UniqueShard
    {
        /** Mutable so const inspection methods (stats, capacity) can
         *  take a consistent snapshot. */
        mutable std::mutex mu;
        /** nullptr = empty slot. Deletion happens only in the GC
         *  sweep, which rebuilds the shard. Guarded by mu. */
        std::vector<Node *> slots;
        size_t mask = 0;
        size_t size = 0;
        size_t minCapacity = 0;
        std::deque<Node> arena;
        Node *freeList = nullptr;
        size_t freeCount = 0;
        size_t rehashes = 0;
        /** Lock-contention accounting (qmdd.shard.* gauges). */
        size_t lockAcquisitions = 0;
        size_t lockContended = 0;
    };

    WorkerContext *context() const;
    WorkerContext *contextSlow() const;

    void beginSession();
    void endSession();

    /** The sweep itself; caller holds gc_mu_. Marks `extra_roots` plus
     *  every parked context's roots, sweeps each shard (under its
     *  lock), clears all contexts' caches, adapts the threshold, and
     *  releases any parked sessions. */
    void sweepLocked(const std::vector<Edge> &extra_roots);

    Edge makeNodeImpl(WorkerContext &ctx, std::int32_t var,
                      const std::array<Edge, 4> &edges);
    Edge multiplyImpl(WorkerContext &ctx, const Edge &a, const Edge &b);
    Edge mulNodes(WorkerContext &ctx, Node *x, Node *y);
    Edge addImpl(WorkerContext &ctx, const Edge &a, const Edge &b);
    Edge ctImpl(WorkerContext &ctx, const Edge &a);

    /** Weight-pointer product with O(1) fast paths for 0 and 1. */
    const Cplx *mulWeights(const Cplx *a, const Cplx *b);

    Node *allocNode(UniqueShard &shard);

    UniqueShard &shardOf(size_t hash);
    /** Lock a shard, counting contention. */
    void lockShard(UniqueShard &shard);

    /** Grow one shard to `capacity` slots (nodes stay put). Caller
     *  holds the shard lock. */
    static void rehashShard(UniqueShard &shard, size_t capacity);

    void markReachable(Node *n, std::uint32_t epoch);

    static size_t hashNode(std::int32_t var,
                           const std::array<Edge, 4> &e);

    ComplexTable ctab_;
    Node terminal_;

    /** Unique id for the thread-local context lookup; survives address
     *  reuse after a Package is destroyed. */
    const std::uint64_t serial_;

    std::deque<UniqueShard> shards_;
    size_t shard_mask_;

    /** Compute-cache geometry shared by every worker context. */
    size_t mul_ways_, add_ways_, ct_ways_;
    size_t mul_set_mask_, add_set_mask_, ct_set_mask_;

    mutable std::mutex ctx_mu_;
    mutable std::vector<std::unique_ptr<WorkerContext>> contexts_;

    mutable std::mutex gc_mu_;
    std::condition_variable gc_cv_;
    std::atomic<bool> gc_requested_{false};
    size_t active_mutators_ = 0; ///< sessions at depth >= 1 (gc_mu_)
    size_t parked_ = 0;          ///< sessions parked at a safe point
    std::uint64_t gc_generation_ = 0;
    std::uint32_t mark_epoch_ = 0; ///< touched only by the sweeper

    /** Reclaimed nodes across every shard; lets allocNode skip the
     *  steal scan entirely while all free lists are empty. */
    std::atomic<size_t> free_total_{0};
    std::atomic<size_t> live_nodes_{0};
    std::atomic<size_t> peak_nodes_{0};
    std::atomic<size_t> gc_runs_{0};
    std::atomic<size_t> gc_threshold_;
    std::atomic<size_t> min_gc_threshold_;
};

} // namespace qsyn::dd
