/**
 * @file
 * The QMDD package: canonical decision-diagram representation of
 * quantum transfer matrices (Miller & Thornton, ISMVL 2006; Niemann et
 * al., TCAD 2016), used by the compiler for formal equivalence checking.
 *
 * All nodes live in one Package; canonicity is global to the package,
 * so two circuits compare equal iff building them yields the *same*
 * root edge (pointer + weight pointer). See node.hpp for the
 * identity-skipping edge convention.
 *
 * Hot-path design (see docs/performance.md):
 *  - the unique table is open-addressing with linear probing and grows
 *    on a load-factor trigger; rehashing moves only the slot array,
 *    never the nodes, so Node* identity (and thus canonicity) survives
 *    every resize;
 *  - the mul/add/ct compute caches are 2-way set-associative with a
 *    one-bit age per way, so two hot operand pairs that collide on a
 *    set no longer evict each other every other probe;
 *  - a Package is deliberately single-threaded; concurrent compiles
 *    use one Package per worker (see core/batch.hpp).
 */

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/matrix.hpp"
#include "qmdd/complex_table.hpp"
#include "qmdd/node.hpp"

namespace qsyn::dd {

/** Counters exposed for the micro-benchmarks, tests, and the obs
 *  metrics snapshot (`qmdd.*`). */
struct PackageStats
{
    size_t uniqueLookups = 0;
    size_t uniqueHits = 0;
    /** Times the unique table grew (slots doubled, nodes untouched). */
    size_t uniqueRehashes = 0;
    size_t multiplies = 0;
    size_t additions = 0;
    /** Compute-cache probes (mul + add + conjugate-transpose). */
    size_t computeLookups = 0;
    size_t computeHits = 0;
    /** Valid compute-cache entries overwritten by a different key. */
    size_t mulEvictions = 0;
    size_t addEvictions = 0;
    size_t ctEvictions = 0;
    size_t gcRuns = 0;
    /** High-water mark of *live* nodes: tracked at unique-table insert,
     *  so hits and free-list recycling do not inflate it. */
    size_t peakNodes = 0;

    /** Fraction of unique-table lookups that found an existing node. */
    double
    uniqueHitRate() const
    {
        return uniqueLookups
                   ? static_cast<double>(uniqueHits) /
                         static_cast<double>(uniqueLookups)
                   : 0.0;
    }

    /** Fraction of compute-cache probes that hit. */
    double
    computeHitRate() const
    {
        return computeLookups
                   ? static_cast<double>(computeHits) /
                         static_cast<double>(computeLookups)
                   : 0.0;
    }
};

/** Construction-time tuning knobs. The defaults fit one compile of a
 *  mid-size circuit; tests shrink them to force rehash/GC paths. */
struct PackageConfig
{
    /** Initial unique-table slot count (rounded up to a power of 2).
     *  The table grows past this on demand; it never shrinks below. */
    size_t initialUniqueCapacity = size_t{1} << 16;
    /** Sets per compute cache (each set holds 2 ways). */
    size_t mulCacheSets = size_t{1} << 16;
    size_t addCacheSets = size_t{1} << 15;
    size_t ctCacheSets = size_t{1} << 12;
    /** Node-count threshold that triggers automatic GC. */
    size_t gcThreshold = size_t{1} << 20;
};

/** Owner of all QMDD nodes plus the unique/compute tables. */
class Package
{
  public:
    Package();
    explicit Package(const PackageConfig &config);

    Package(const Package &) = delete;
    Package &operator=(const Package &) = delete;

    /** @name Leaf edges */
    /// @{
    /** The zero matrix (of any dimension). */
    Edge zeroEdge();
    /** The identity (of any dimension) — terminal with weight 1. */
    Edge identityEdge();
    /** w x identity. */
    Edge terminalEdge(const Cplx &w);
    /// @}

    /**
     * Canonical node constructor: applies zero-edge canonicalization,
     * the identity-skip reduction, weight normalization, and the unique
     * table. `edges[i]` is quadrant U_{rc} with i = 2r + c. Children
     * must be at variables strictly greater than `var`.
     */
    Edge makeNode(std::int32_t var, const std::array<Edge, 4> &edges);

    /** @name Matrix algebra */
    /// @{
    Edge multiply(const Edge &a, const Edge &b);
    Edge add(const Edge &a, const Edge &b);
    Edge conjugateTranspose(const Edge &a);
    /** Edge with weight scaled by `factor`. */
    Edge scaled(const Edge &e, const Cplx &factor);
    /**
     * Quadrant (r, c) of matrix edge `x` viewed at level `var`: the
     * stored child when x's node sits exactly at `var`, otherwise the
     * identity-skip expansion (diagonal continues, off-diagonal is
     * zero). Exposed for the vector engine.
     */
    Edge child(const Edge &x, int r, int c, std::int32_t var);
    /// @}

    /** @name Gate and circuit construction */
    /// @{
    /** DD of a base 2x2 unitary with positive controls. */
    Edge makeGateDD(const Mat2 &u, const std::vector<Qubit> &controls,
                    Qubit target);
    /** DD of a (controlled) SWAP. */
    Edge makeSwapDD(const std::vector<Qubit> &controls, Qubit a, Qubit b);
    /** DD of an arbitrary IR gate (must be unitary). */
    Edge gateDD(const Gate &gate);
    /** DD of a whole circuit: product of its gate DDs. */
    Edge buildCircuit(const Circuit &circuit);
    /** Projector |0><0| on `zero_wires`, identity on all other wires. */
    Edge makeProjector(const std::vector<Qubit> &zero_wires);
    /// @}

    /** @name Inspection */
    /// @{
    /** Matrix entry at (row, col) for an n-qubit context. Qubit 0 is
     *  the most significant bit of the index. */
    Cplx getEntry(const Edge &e, std::uint64_t row, std::uint64_t col,
                  int num_qubits);
    /** Distinct nodes reachable from `e` (terminal excluded). */
    size_t countNodes(const Edge &e);
    /** Largest entry magnitude of the represented matrix. */
    double maxMagnitude(const Edge &e);
    /** Nodes currently alive in the unique table. */
    size_t activeNodes() const { return unique_size_; }
    /** Current unique-table slot count. */
    size_t uniqueCapacity() const { return unique_slots_.size(); }
    /** Live nodes / slots; the resize trigger keeps this under the
     *  internal maximum (see kMaxLoadPercent in package.cpp). */
    double
    uniqueLoadFactor() const
    {
        return unique_slots_.empty()
                   ? 0.0
                   : static_cast<double>(unique_size_) /
                         static_cast<double>(unique_slots_.size());
    }
    /** Nodes ever allocated from the arena (live + recycled). */
    size_t arenaNodes() const { return arena_.size(); }
    /** Bytes the node arena holds (allocator high-water, since the
     *  arena never shrinks); the per-compile resource accounting's
     *  `qmdd_arena_bytes` source. */
    size_t arenaBytes() const { return arena_.size() * sizeof(Node); }
    /** Reclaimed nodes awaiting reuse. */
    size_t freeListLength() const { return free_count_; }
    const PackageStats &stats() const { return stats_; }
    /**
     * Publish the package's counters as `<prefix>.*` gauges on the
     * installed obs sink: live/peak nodes, table lookup/hit counts and
     * rates, allocator internals (arena size, free-list length), table
     * capacity/load factor, and per-cache eviction counts. No-op when
     * observability is off; last package published wins on collisions.
     */
    void publishMetrics(const char *prefix = "qmdd") const;
    /// @}

    /**
     * Tolerant structural comparison: true when the two matrices agree
     * entrywise within eps (computed as max|A - B| < eps). Used as a
     * fallback when float drift breaks exact pointer canonicity.
     */
    bool approxEqualEdges(const Edge &a, const Edge &b, double eps = 1e-6);

    /**
     * Mark-and-sweep garbage collection. Everything reachable from
     * `roots` survives; compute tables are cleared. Called
     * automatically by buildCircuit when the node count passes the GC
     * threshold.
     */
    void collectGarbage(const std::vector<Edge> &roots);

    /** Node-count threshold that triggers automatic GC (clamped to a
     *  small floor so it can never be set to a thrash-inducing zero). */
    void setGcThreshold(size_t threshold);
    size_t gcThreshold() const { return gc_threshold_; }

  private:
    /** One way of a 2-way set-associative product-cache set. `age`
     *  is the pseudo-LRU bit: 0 = most recently touched in its set. */
    struct MulSlot
    {
        const Node *a = nullptr;
        const Node *b = nullptr;
        Edge result;
        std::uint8_t age = 0;
    };
    /** One way of the 2-way sum cache. */
    struct AddSlot
    {
        Edge a{};
        Edge b{};
        Edge result;
        bool valid = false;
        std::uint8_t age = 0;
    };
    /** One way of the 2-way conjugate-transpose cache. */
    struct CtSlot
    {
        const Node *a = nullptr;
        Edge result;
        std::uint8_t age = 0;
    };

    Node *allocNode();

    Edge mulNodes(Node *x, Node *y);

    /** Weight-pointer product with O(1) fast paths for 0 and 1. */
    const Cplx *mulWeights(const Cplx *a, const Cplx *b);

    /** Grow the unique table to `capacity` slots (nodes stay put). */
    void rehashUnique(size_t capacity);

    void markReachable(Node *n, std::uint32_t epoch);

    static size_t hashNode(std::int32_t var,
                           const std::array<Edge, 4> &e);

    ComplexTable ctab_;
    Node terminal_;
    std::deque<Node> arena_;
    Node *free_list_ = nullptr;
    size_t free_count_ = 0;

    /** Open-addressing unique table: nullptr = empty slot. Deletion
     *  happens only in collectGarbage, which rebuilds the table. */
    std::vector<Node *> unique_slots_;
    size_t unique_mask_;
    size_t unique_size_ = 0;
    size_t min_unique_capacity_;

    std::vector<MulSlot> mul_cache_;
    std::vector<AddSlot> add_cache_;
    std::vector<CtSlot> ct_cache_;
    size_t mul_set_mask_;
    size_t add_set_mask_;
    size_t ct_set_mask_;
    std::unordered_map<const Node *, double, std::hash<const Node *>>
        mag_cache_;
    std::uint32_t mark_epoch_ = 0;
    size_t gc_threshold_;
    size_t min_gc_threshold_;
    PackageStats stats_;
};

} // namespace qsyn::dd
