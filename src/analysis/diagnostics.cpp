#include "analysis/diagnostics.hpp"

#include <sstream>

#include "obs/obs.hpp"

namespace qsyn::analysis {

namespace {

/** Report strings go through the shared escaper (same convention as
 *  core/report.cpp) so paths and device names stay valid JSON. */
std::string
esc(const std::string &s)
{
    return obs::jsonEscape(s);
}

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "warning";
}

const char *
severitySarifLevel(Severity severity)
{
    // SARIF levels happen to share our names: note/warning/error.
    return severityName(severity);
}

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"QL001", "gate-not-in-library",
         "gate is not in the target device's native gate library",
         Severity::Error},
        {"QL002", "connectivity-violation",
         "two-qubit gate uses a pair outside the device coupling map "
         "(or against its direction)",
         Severity::Error},
        {"QL003", "dead-qubit",
         "declared qubit is never touched by any gate", Severity::Warning},
        {"QL004", "dead-gate-pair",
         "gate and a later inverse cancel: every gate between them "
         "commutes, so the pair is removable", Severity::Warning},
        {"QL005", "ancilla-not-restored",
         "ancilla wire is not provably returned to |0> at circuit end",
         Severity::Warning},
        {"QL006", "exceeds-device-capacity",
         "circuit needs more qubits than the device has",
         Severity::Error},
    };
    return catalog;
}

const RuleInfo *
findRule(const std::string &rule_id)
{
    for (const RuleInfo &rule : ruleCatalog()) {
        if (rule_id == rule.id)
            return &rule;
    }
    return nullptr;
}

size_t
Diagnostics::countAtLeast(Severity min) const
{
    size_t n = 0;
    for (const Finding &f : findings) {
        if (f.severity >= min)
            ++n;
    }
    return n;
}

std::string
findingToString(const Diagnostics &report, const Finding &finding)
{
    std::ostringstream os;
    os << report.artifact;
    if (finding.gateIndex != kNoGate)
        os << ":gate " << finding.gateIndex;
    os << ": " << severityName(finding.severity) << ": ["
       << finding.ruleId << "] " << finding.message;
    return os.str();
}

std::string
renderText(const std::vector<Diagnostics> &reports)
{
    std::ostringstream os;
    size_t errors = 0, warnings = 0, notes = 0;
    for (const Diagnostics &report : reports) {
        for (const Finding &f : report.findings) {
            os << findingToString(report, f) << "\n";
            if (f.severity == Severity::Error)
                ++errors;
            else if (f.severity == Severity::Warning)
                ++warnings;
            else
                ++notes;
        }
    }
    os << reports.size() << " artifact(s): " << errors << " error(s), "
       << warnings << " warning(s), " << notes << " note(s)\n";
    return os.str();
}

namespace {

void
emitMetricsJson(std::ostringstream &os, const DagMetrics &m,
                const char *indent)
{
    os << "{\n"
       << indent << "  \"gates\": " << m.gates << ",\n"
       << indent << "  \"edges\": " << m.edges << ",\n"
       << indent << "  \"depth\": " << m.depth << ",\n"
       << indent << "  \"critical_gates\": " << m.criticalGates << ",\n"
       << indent << "  \"max_layer_width\": " << m.maxLayerWidth << ",\n"
       << indent << "  \"parallelism\": " << m.parallelism << "\n"
       << indent << "}";
}

void
emitFindingJson(std::ostringstream &os, const Finding &f,
                const char *indent)
{
    os << indent << "{\"rule\": \"" << esc(f.ruleId) << "\", "
       << "\"severity\": \"" << severityName(f.severity) << "\", "
       << "\"message\": \"" << esc(f.message) << "\"";
    if (f.gateIndex != kNoGate)
        os << ", \"gate\": " << f.gateIndex;
    if (f.wire != Finding::kNoWire)
        os << ", \"wire\": " << f.wire;
    if (!f.relatedGates.empty()) {
        os << ", \"related_gates\": [";
        for (size_t i = 0; i < f.relatedGates.size(); ++i)
            os << (i ? ", " : "") << f.relatedGates[i];
        os << "]";
    }
    os << "}";
}

} // namespace

std::string
renderJson(const std::vector<Diagnostics> &reports)
{
    std::ostringstream os;
    os.precision(12);
    size_t errors = 0, warnings = 0, notes = 0;
    os << "{\n  \"artifacts\": [";
    for (size_t r = 0; r < reports.size(); ++r) {
        const Diagnostics &report = reports[r];
        os << (r ? "," : "") << "\n    {\n      \"artifact\": \""
           << esc(report.artifact) << "\",\n      \"metrics\": ";
        emitMetricsJson(os, report.metrics, "      ");
        os << ",\n      \"findings\": [";
        for (size_t i = 0; i < report.findings.size(); ++i) {
            const Finding &f = report.findings[i];
            os << (i ? "," : "") << "\n";
            emitFindingJson(os, f, "        ");
            if (f.severity == Severity::Error)
                ++errors;
            else if (f.severity == Severity::Warning)
                ++warnings;
            else
                ++notes;
        }
        os << (report.findings.empty() ? "" : "\n      ") << "]\n    }";
    }
    os << (reports.empty() ? "" : "\n  ") << "],\n";
    os << "  \"summary\": {\"errors\": " << errors << ", \"warnings\": "
       << warnings << ", \"notes\": " << notes << "}\n}\n";
    return os.str();
}

std::string
renderSarif(const std::vector<Diagnostics> &reports)
{
    const std::vector<RuleInfo> &catalog = ruleCatalog();
    auto ruleIndexOf = [&](const std::string &id) -> long {
        for (size_t i = 0; i < catalog.size(); ++i) {
            if (id == catalog[i].id)
                return static_cast<long>(i);
        }
        return -1;
    };

    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": \"https://raw.githubusercontent.com/"
          "oasis-tcs/sarif-spec/master/Schemata/"
          "sarif-schema-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n    {\n"
       << "      \"tool\": {\n        \"driver\": {\n"
       << "          \"name\": \"qlint\",\n"
       << "          \"informationUri\": "
          "\"https://example.invalid/qsyn/docs/analysis\",\n"
       << "          \"version\": \"1.0.0\",\n"
       << "          \"rules\": [";
    for (size_t i = 0; i < catalog.size(); ++i) {
        const RuleInfo &rule = catalog[i];
        os << (i ? "," : "") << "\n            {\"id\": \"" << rule.id
           << "\", \"name\": \"" << rule.name
           << "\", \"shortDescription\": {\"text\": \""
           << esc(rule.description)
           << "\"}, \"defaultConfiguration\": {\"level\": \""
           << severitySarifLevel(rule.defaultSeverity) << "\"}}";
    }
    os << "\n          ]\n        }\n      },\n"
       << "      \"results\": [";
    bool first = true;
    for (const Diagnostics &report : reports) {
        for (const Finding &f : report.findings) {
            os << (first ? "" : ",") << "\n        {\n"
               << "          \"ruleId\": \"" << esc(f.ruleId) << "\",\n";
            long rule_index = ruleIndexOf(f.ruleId);
            if (rule_index >= 0)
                os << "          \"ruleIndex\": " << rule_index << ",\n";
            os << "          \"level\": \""
               << severitySarifLevel(f.severity) << "\",\n"
               << "          \"message\": {\"text\": \""
               << esc(f.message) << "\"},\n"
               << "          \"locations\": [\n"
               << "            {\"physicalLocation\": "
                  "{\"artifactLocation\": {\"uri\": \""
               << esc(report.artifact) << "\"}}";
            if (f.gateIndex != kNoGate) {
                os << ",\n             \"logicalLocations\": "
                      "[{\"name\": \"gate["
                   << f.gateIndex
                   << "]\", \"kind\": \"instruction\"}]";
            }
            os << "}\n          ]\n        }";
            first = false;
        }
    }
    os << (first ? "" : "\n      ") << "]\n    }\n  ]\n}\n";
    return os.str();
}

} // namespace qsyn::analysis
