/**
 * @file
 * Dataflow analyses over the dependency DAG: per-wire def-use chains,
 * qubit liveness intervals, and gate-level reachability.
 *
 * These are the classic compiler dataflow facts transplanted to the
 * quantum IR. A wire's "definition" is its implicit |0> preparation at
 * circuit entry; every gate touching the wire both uses and redefines
 * it (unitaries are total), so the def-use chain of a wire is simply
 * the ordered list of gates on it — but split by *role* (control vs
 * target), because several lint rules care about the difference: a
 * wire only ever used as a control still holds its initial state in
 * the computational basis, while a targeted wire does not.
 *
 * Liveness is interval-shaped (first gate .. last gate on the wire);
 * the idle-layer figure per wire is the decoherence-exposure proxy the
 * scheduler also reports. Reachability answers "can gate a influence
 * gate b" — the transitive closure question lint rules and the future
 * lookahead router ask; it is computed on demand (forward BFS) rather
 * than stored, keeping the analysis O(V+E) per query.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "analysis/dag.hpp"
#include "ir/circuit.hpp"

namespace qsyn::analysis {

/** Everything the dataflow pass knows about one wire. */
struct WireFacts
{
    /** Gates touching the wire, in program order (the def-use chain). */
    std::vector<size_t> uses;
    /** Subset of `uses` where the wire is a target (state-changing). */
    std::vector<size_t> targetUses;
    /** First / last gate touching the wire (kNoGate when unused). */
    size_t firstUse = kNoGate;
    size_t lastUse = kNoGate;
    /** Layers the wire sits idle between its first and last gate. */
    size_t idleLayers = 0;
    /** True when no gate touches the wire at all. */
    bool dead() const { return uses.empty(); }
};

/** Per-wire dataflow facts for a whole circuit. */
class DataflowAnalysis
{
  public:
    explicit DataflowAnalysis(const DependencyDag &dag);

    const DependencyDag &dag() const { return *dag_; }

    Qubit numWires() const { return static_cast<Qubit>(wires_.size()); }
    const WireFacts &wire(Qubit q) const { return wires_[q]; }
    const std::vector<WireFacts> &wires() const { return wires_; }

    /** Wires no gate touches (sorted). */
    std::vector<Qubit> deadWires() const;

    /** True when the wire is live (between first and last use,
     *  inclusive) at ASAP layer `layer`. */
    bool liveAt(Qubit q, size_t layer) const;

    /** Total idle wire-layers across live wires (the scheduler's
     *  decoherence-exposure proxy, derived from the DAG instead). */
    size_t idleWireLayers() const;

    /**
     * True when a dependency path from gate `from` to gate `to`
     * exists (i.e. reordering them is not allowed). Forward BFS over
     * the DAG; `from == to` counts as reachable.
     */
    bool reaches(size_t from, size_t to) const;

    /** All gates reachable from `from` (including itself), sorted. */
    std::vector<size_t> reachableFrom(size_t from) const;

  private:
    const DependencyDag *dag_;
    std::vector<WireFacts> wires_;
};

} // namespace qsyn::analysis
