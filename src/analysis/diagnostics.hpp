/**
 * @file
 * The diagnostics engine: findings with stable rule IDs and
 * severities, plus renderers for human text, JSON, and SARIF 2.1.0.
 *
 * Every lint rule reports through this layer, so all consumers agree
 * on identity and shape: `qlint` renders any of the three formats,
 * `qsync --analyze` embeds the JSON form in its compile report, and
 * the qsynd `analyze` op returns the same fields over the wire. Rule
 * IDs (QL001...) are stable API — CI configurations and SARIF viewers
 * key on them — so IDs are never reused or renumbered; retired rules
 * leave a hole.
 *
 * The SARIF renderer targets the 2.1.0 schema (the format GitHub code
 * scanning and most editors ingest): one run, tool.driver "qlint"
 * with the rule catalog, one result per finding with a physical
 * location (artifact URI) and a logical location naming the gate.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/dag.hpp"

namespace qsyn::analysis {

/** Finding severity, ordered by increasing gravity. */
enum class Severity
{
    Note,    ///< informational ("note" in SARIF)
    Warning, ///< suspicious but possibly intended
    Error    ///< statically provable defect
};

/** Printable name ("note", "warning", "error"). */
const char *severityName(Severity severity);
/** SARIF `level` string for a severity (identical to severityName). */
const char *severitySarifLevel(Severity severity);

/** One diagnostic produced by a lint rule. */
struct Finding
{
    /** Stable rule ID, e.g. "QL002". */
    std::string ruleId;
    Severity severity = Severity::Warning;
    /** Human-readable message (plain text, one line). */
    std::string message;
    /** Gate the finding anchors to (kNoGate for circuit-level). */
    size_t gateIndex = kNoGate;
    /** Other gates involved (e.g. the partner of a dead pair). */
    std::vector<size_t> relatedGates;
    /** Wire the finding is about (kNoWire when not wire-shaped). */
    static constexpr Qubit kNoWire = static_cast<Qubit>(-1);
    Qubit wire = kNoWire;
};

/** Static description of one rule (the SARIF rule catalog entry). */
struct RuleInfo
{
    const char *id;
    const char *name;          ///< kebab-case short name
    const char *description;   ///< one-line help text
    Severity defaultSeverity;
};

/** The full rule catalog, ordered by ID. */
const std::vector<RuleInfo> &ruleCatalog();

/** Catalog entry for an ID; null for unknown IDs. */
const RuleInfo *findRule(const std::string &rule_id);

/** Diagnostics for one analyzed artifact (circuit/file). */
struct Diagnostics
{
    /** Artifact the findings refer to (file path or circuit name);
     *  rendered as the SARIF artifact URI. */
    std::string artifact;
    std::vector<Finding> findings;
    /** Scheduling metrics of the analyzed circuit. */
    DagMetrics metrics;

    /** Findings at or above `min` severity. */
    size_t countAtLeast(Severity min) const;
    bool hasErrors() const { return countAtLeast(Severity::Error) > 0; }
};

/** @name Renderers
 * Each renders one or more Diagnostics (one per analyzed input).
 * `render*` never throws on empty input: zero findings render as a
 * clean report.
 */
/// @{

/** Human text: one line per finding, GCC-style
 *  `artifact:gate N: severity: [QLxxx] message`, plus a summary. */
std::string renderText(const std::vector<Diagnostics> &reports);

/** JSON: {"artifacts": [{"artifact", "metrics", "findings": [...]}],
 *  "summary": {"errors", "warnings", "notes"}}. */
std::string renderJson(const std::vector<Diagnostics> &reports);

/** SARIF 2.1.0 log with a single qlint run. */
std::string renderSarif(const std::vector<Diagnostics> &reports);

/// @}

/** Render one finding as the text-format line (no trailing newline). */
std::string findingToString(const Diagnostics &report,
                            const Finding &finding);

} // namespace qsyn::analysis
