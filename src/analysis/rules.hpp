/**
 * @file
 * The lint rules: statically detectable defects in a circuit, judged
 * against an optional target device and ancilla contract.
 *
 * Rule catalog (IDs are stable; see diagnostics.hpp):
 *
 *   QL001 gate-not-in-library      device gate-set illegality
 *   QL002 connectivity-violation   CNOT off (or against) a coupling edge
 *   QL003 dead-qubit               declared wire no gate ever touches
 *   QL004 dead-gate-pair           inverse pair with only commuting
 *                                  gates between — removable, however
 *                                  far apart (no peephole window)
 *   QL005 ancilla-not-restored     ancilla wire not provably |0> at end
 *   QL006 exceeds-device-capacity  circuit wider than the device
 *
 * Device rules (QL001/QL002/QL006) run only when a device is given;
 * QL005 only when an ancilla contract is given. QL004 reuses the
 * optimizer's commutation-aware cancellation relation but scans the
 * whole circuit (the optimizer stops at a 256-gate horizon), so a
 * finding means "the optimizer at fixpoint would have removed this" —
 * which is why compiled output must be QL004-clean, the invariant
 * qfuzz enforces.
 */

#pragma once

#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/diagnostics.hpp"
#include "device/device.hpp"

namespace qsyn::analysis {

/** What to lint against. */
struct LintOptions
{
    /** Target device; null disables QL001/QL002/QL006. Not owned —
     *  must outlive the lint call. */
    const Device *device = nullptr;
    /** Wires that must be returned to |0> (enables QL005). */
    std::vector<Qubit> ancillas;
    /** When non-empty, only these rule IDs may fire. */
    std::vector<std::string> onlyRules;
    /** Rule IDs that must not fire (applied after onlyRules). */
    std::vector<std::string> disabledRules;

    bool ruleEnabled(const char *rule_id) const;
};

/**
 * Run every applicable rule over an analyzed circuit. Findings are
 * ordered by rule, then by gate index. The DAG and dataflow must have
 * been built from the same circuit.
 */
std::vector<Finding> lintCircuit(const DependencyDag &dag,
                                 const DataflowAnalysis &dataflow,
                                 const LintOptions &options);

/**
 * Convenience one-shot: build the DAG and dataflow for `circuit`,
 * lint it, and return the full Diagnostics (metrics included).
 * `artifact` names the input in reports (file path or circuit name).
 */
Diagnostics analyzeCircuit(const Circuit &circuit,
                           const std::string &artifact,
                           const LintOptions &options = {});

/**
 * The cancellable-pair scan behind QL004, exposed for QL005 and for
 * tests: returns pairs (i, j), i < j, such that removing all pairs
 * leaves no further cancellable pair (the optimizer's fixpoint), and
 * fills `removed` (sized to the circuit) with the union of all pair
 * members.
 */
std::vector<std::pair<size_t, size_t>>
findCancellablePairs(const Circuit &circuit, std::vector<bool> *removed);

} // namespace qsyn::analysis
