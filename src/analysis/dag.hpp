/**
 * @file
 * The gate-dependency DAG: the circuit viewed as a partial order
 * instead of a total one.
 *
 * `ir::Circuit` is a flat gate list; most static questions (what can
 * run in parallel, what may be reordered, which gates are really
 * adjacent on a wire) are questions about the *dependency structure*,
 * not the list. The DAG makes that structure explicit: one node per
 * gate, one edge g -> h whenever h must execute after g.
 *
 * Edges come from per-wire ordering, optionally refined by the cheap
 * syntactic commutation rules of Gate::commutesWith. The construction
 * keeps, per wire, the trailing *block* of pairwise-commuting gates:
 * a gate that commutes with the whole current block joins it (and
 * depends on the previous block); a gate that does not starts a new
 * block. Every member of block k has edges from every member of block
 * k-1, so any two same-wire gates either commute or are connected by
 * a path — which makes *every* topological order of the DAG an
 * equivalence-preserving rescheduling of the circuit (the property
 * `ctest -L analysis` checks against the QMDD oracle).
 *
 * Barriers and measurements fence: they are treated as commuting with
 * nothing, and a barrier acts on every wire of the register (matching
 * opt::scheduleAsap's full-layer fence semantics).
 *
 * The DAG also carries the scheduling view derived from longest paths:
 * ASAP layers, depth (critical-path length), layer widths, and one
 * explicit critical path. This is the substrate the lint rules, the
 * `--analyze` metrics, and a future lookahead router share.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qsyn::analysis {

/** Sentinel gate index ("no gate"). */
inline constexpr size_t kNoGate = static_cast<size_t>(-1);

/** Construction knobs for a DependencyDag. */
struct DagOptions
{
    /** Refine per-wire edges with Gate::commutesWith: commuting
     *  neighbors on a wire share a block instead of being chained.
     *  Off = plain per-wire program order (the ASAP view). */
    bool commutationAware = true;
};

/** One gate's node: its dependency neighborhood and ASAP layer. */
struct DagNode
{
    /** Gate indices that must execute before this one (sorted). */
    std::vector<size_t> preds;
    /** Gate indices that must execute after this one (sorted). */
    std::vector<size_t> succs;
    /** Earliest layer this gate can run in (0-based). */
    size_t asapLayer = 0;
};

/** The dependency DAG of one circuit (indices parallel the gate
 *  list; the circuit must outlive the DAG). */
class DependencyDag
{
  public:
    explicit DependencyDag(const Circuit &circuit, DagOptions options = {});

    const Circuit &circuit() const { return *circuit_; }
    const DagOptions &options() const { return options_; }

    size_t size() const { return nodes_.size(); }
    const DagNode &node(size_t gate_index) const
    {
        return nodes_[gate_index];
    }
    const std::vector<size_t> &preds(size_t gate_index) const
    {
        return nodes_[gate_index].preds;
    }
    const std::vector<size_t> &succs(size_t gate_index) const
    {
        return nodes_[gate_index].succs;
    }

    /** True when an edge a -> b exists (direct dependency). */
    bool hasEdge(size_t a, size_t b) const;

    /** Total dependency edges. */
    size_t edgeCount() const { return edge_count_; }

    /** Critical-path length in layers (0 for an empty circuit). */
    size_t depth() const { return layers_.size(); }

    /** Gate indices of ASAP layer `t` (sorted ascending). */
    const std::vector<size_t> &layer(size_t t) const
    {
        return layers_[t];
    }
    const std::vector<std::vector<size_t>> &layers() const
    {
        return layers_;
    }

    /** Gates with no predecessors (the initial frontier a lookahead
     *  router schedules from). */
    const std::vector<size_t> &roots() const { return roots_; }

    /**
     * One explicit longest dependency chain, as gate indices in
     * execution order; its length equals depth(). Empty for an empty
     * circuit. Deterministic (smallest-index tie-break).
     */
    std::vector<size_t> criticalPath() const;

    /**
     * A topological order of the gates. `seed` selects among valid
     * orders deterministically: 0 yields program order; any other
     * value drives a seeded ready-list shuffle — the rescheduling
     * the round-trip property tests push through the equivalence
     * oracle. Always returns every gate exactly once.
     */
    std::vector<size_t> topologicalOrder(std::uint64_t seed = 0) const;

    /**
     * Rebuild a circuit from a gate ordering (as produced by
     * topologicalOrder). The result has the same register, name, and
     * gates, permuted.
     */
    Circuit reschedule(const std::vector<size_t> &order) const;

    /** Multi-line rendering (one line per gate with its preds). */
    std::string toString() const;

  private:
    const Circuit *circuit_;
    DagOptions options_;
    std::vector<DagNode> nodes_;
    std::vector<std::vector<size_t>> layers_;
    std::vector<size_t> roots_;
    size_t edge_count_ = 0;
};

/** Aggregate scheduling metrics derived from a DAG. */
struct DagMetrics
{
    size_t gates = 0;          ///< DAG node count
    size_t edges = 0;          ///< dependency edge count
    size_t depth = 0;          ///< critical-path length in layers
    size_t criticalGates = 0;  ///< gates on one critical path (== depth)
    size_t maxLayerWidth = 0;  ///< widest concurrent layer
    double parallelism = 0.0;  ///< gates / depth (average layer width)
};

/** Compute the metric summary of a DAG in one pass. */
DagMetrics computeDagMetrics(const DependencyDag &dag);

/**
 * Critical-path depth of a circuit under the commutation-aware DAG —
 * the depth figure CompileResult stage metrics report. Cheaper than
 * keeping the DAG when only the number is needed.
 */
size_t circuitDepth(const Circuit &circuit);

} // namespace qsyn::analysis
