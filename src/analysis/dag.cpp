#include "analysis/dag.hpp"

#include <algorithm>
#include <sstream>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace qsyn::analysis {

namespace {

/** Wires a gate occupies for dependency purposes: its controls and
 *  targets, except a barrier, which fences the whole register. */
std::vector<Qubit>
dependencyWires(const Gate &gate, Qubit num_qubits)
{
    if (gate.kind() == GateKind::Barrier) {
        std::vector<Qubit> all(num_qubits);
        for (Qubit q = 0; q < num_qubits; ++q)
            all[q] = q;
        return all;
    }
    return gate.qubits();
}

/** Commutation test used for block membership: only unitary gates
 *  ever commute here — Measure and Barrier fence unconditionally. */
bool
blockCommutes(const Gate &a, const Gate &b)
{
    if (!a.isUnitary() || !b.isUnitary())
        return false;
    return a.commutesWith(b);
}

} // namespace

DependencyDag::DependencyDag(const Circuit &circuit, DagOptions options)
    : circuit_(&circuit), options_(options), nodes_(circuit.size())
{
    const Qubit width = circuit.numQubits();
    // Per-wire block state: the previous block (every new block member
    // depends on all of it) and the current trailing block of gates
    // that pairwise commute on this wire.
    std::vector<std::vector<size_t>> prev_block(width);
    std::vector<std::vector<size_t>> cur_block(width);

    auto addEdge = [&](size_t from, size_t to) {
        // Pred lists are built in ascending `from` order per wire but
        // a gate pair can share several wires; dedupe on insert.
        std::vector<size_t> &preds = nodes_[to].preds;
        if (std::find(preds.begin(), preds.end(), from) != preds.end())
            return;
        preds.push_back(from);
        nodes_[from].succs.push_back(to);
        ++edge_count_;
    };

    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        for (Qubit q : dependencyWires(g, width)) {
            bool joins = false;
            if (options_.commutationAware && !cur_block[q].empty()) {
                joins = true;
                for (size_t member : cur_block[q]) {
                    if (!blockCommutes(circuit[member], g)) {
                        joins = false;
                        break;
                    }
                }
            }
            if (!joins && !cur_block[q].empty()) {
                prev_block[q] = std::move(cur_block[q]);
                cur_block[q].clear();
            }
            for (size_t dep : prev_block[q])
                addEdge(dep, i);
            cur_block[q].push_back(i);
        }
    }

    for (DagNode &node : nodes_) {
        std::sort(node.preds.begin(), node.preds.end());
        std::sort(node.succs.begin(), node.succs.end());
        node.succs.erase(
            std::unique(node.succs.begin(), node.succs.end()),
            node.succs.end());
    }
    // succs gained dedupe after counting; recount edges from preds
    // (which were deduped on insert) — keep the two views consistent.
    edge_count_ = 0;
    for (const DagNode &node : nodes_)
        edge_count_ += node.preds.size();

    // ASAP layering = longest path from any root, by index order
    // (preds always precede succs in the gate list, so one forward
    // sweep suffices).
    size_t max_layer = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        size_t layer = 0;
        for (size_t p : nodes_[i].preds)
            layer = std::max(layer, nodes_[p].asapLayer + 1);
        nodes_[i].asapLayer = layer;
        max_layer = std::max(max_layer, layer);
        if (nodes_[i].preds.empty())
            roots_.push_back(i);
    }
    if (!nodes_.empty()) {
        layers_.resize(max_layer + 1);
        for (size_t i = 0; i < nodes_.size(); ++i)
            layers_[nodes_[i].asapLayer].push_back(i);
    }
}

bool
DependencyDag::hasEdge(size_t a, size_t b) const
{
    const std::vector<size_t> &preds = nodes_[b].preds;
    return std::binary_search(preds.begin(), preds.end(), a);
}

std::vector<size_t>
DependencyDag::criticalPath() const
{
    if (nodes_.empty())
        return {};
    // Deepest node with the smallest index, then walk preds choosing
    // the smallest-index one on the previous layer.
    size_t cur = layers_.back().front();
    std::vector<size_t> path{cur};
    while (nodes_[cur].asapLayer > 0) {
        size_t want = nodes_[cur].asapLayer - 1;
        size_t next = kNoGate;
        for (size_t p : nodes_[cur].preds) {
            if (nodes_[p].asapLayer == want) {
                next = p;
                break; // preds sorted ascending: first = smallest
            }
        }
        // A node on layer L > 0 always has a pred on layer L-1.
        path.push_back(next);
        cur = next;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<size_t>
DependencyDag::topologicalOrder(std::uint64_t seed) const
{
    std::vector<size_t> order;
    order.reserve(nodes_.size());
    std::vector<size_t> missing(nodes_.size());
    std::vector<size_t> ready;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        missing[i] = nodes_[i].preds.size();
        if (missing[i] == 0)
            ready.push_back(i);
    }
    Rng rng(seed);
    while (!ready.empty()) {
        size_t pick = 0;
        if (seed == 0) {
            // Program order: the smallest ready index.
            pick = static_cast<size_t>(
                std::min_element(ready.begin(), ready.end()) -
                ready.begin());
        } else {
            pick = static_cast<size_t>(
                rng.below(static_cast<std::uint64_t>(ready.size())));
        }
        size_t gate = ready[pick];
        ready[pick] = ready.back();
        ready.pop_back();
        order.push_back(gate);
        for (size_t s : nodes_[gate].succs) {
            if (--missing[s] == 0)
                ready.push_back(s);
        }
    }
    if (order.size() != nodes_.size())
        throw Error("analysis: dependency graph is cyclic");
    return order;
}

Circuit
DependencyDag::reschedule(const std::vector<size_t> &order) const
{
    Circuit out(circuit_->numQubits(), circuit_->name());
    for (size_t index : order)
        out.add((*circuit_)[index]);
    return out;
}

std::string
DependencyDag::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        os << "[" << i << "] L" << nodes_[i].asapLayer << " "
           << (*circuit_)[i].toString();
        if (!nodes_[i].preds.empty()) {
            os << "  <-";
            for (size_t p : nodes_[i].preds)
                os << " " << p;
        }
        os << "\n";
    }
    return os.str();
}

DagMetrics
computeDagMetrics(const DependencyDag &dag)
{
    DagMetrics m;
    m.gates = dag.size();
    m.edges = dag.edgeCount();
    m.depth = dag.depth();
    m.criticalGates = m.depth;
    for (size_t t = 0; t < dag.depth(); ++t)
        m.maxLayerWidth = std::max(m.maxLayerWidth, dag.layer(t).size());
    m.parallelism = m.depth > 0 ? static_cast<double>(m.gates) /
                                      static_cast<double>(m.depth)
                                : 0.0;
    return m;
}

size_t
circuitDepth(const Circuit &circuit)
{
    if (circuit.empty())
        return 0;
    return DependencyDag(circuit).depth();
}

} // namespace qsyn::analysis
