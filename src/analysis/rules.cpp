#include "analysis/rules.hpp"

#include <algorithm>
#include <sstream>

namespace qsyn::analysis {

namespace {

bool
containsId(const std::vector<std::string> &ids, const char *rule_id)
{
    return std::find(ids.begin(), ids.end(), rule_id) != ids.end();
}

bool
sharesWire(const Gate &a, const Gate &b)
{
    for (Qubit q : a.qubits()) {
        if (b.usesQubit(q))
            return true;
    }
    return false;
}

Finding
makeFinding(const char *rule_id, std::string message,
            size_t gate_index = kNoGate,
            Qubit wire = Finding::kNoWire)
{
    Finding f;
    f.ruleId = rule_id;
    const RuleInfo *rule = findRule(f.ruleId);
    f.severity = rule ? rule->defaultSeverity : Severity::Warning;
    f.message = std::move(message);
    f.gateIndex = gate_index;
    f.wire = wire;
    return f;
}

/** QL006 — and whether per-gate device rules should run at all. */
bool
checkCapacity(const Circuit &circuit, const Device &device,
              const LintOptions &options, std::vector<Finding> &out)
{
    if (circuit.numQubits() <= device.numQubits())
        return true;
    if (options.ruleEnabled("QL006")) {
        std::ostringstream os;
        os << "circuit uses " << circuit.numQubits()
           << " qubits but device '" << device.name() << "' has only "
           << device.numQubits();
        out.push_back(makeFinding("QL006", os.str()));
    }
    // Per-gate placement checks against a too-small device would just
    // repeat the capacity finding gate by gate.
    return false;
}

void
checkDeviceLegality(const Circuit &circuit, const Device &device,
                    const LintOptions &options, std::vector<Finding> &out)
{
    bool check_library = options.ruleEnabled("QL001");
    bool check_coupling = options.ruleEnabled("QL002");
    if (!check_library && !check_coupling)
        return;
    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (g.kind() == GateKind::Barrier)
            continue; // scheduling directive, not an executed operation
        if (!Device::inNativeLibrary(g.kind(), g.numControls())) {
            if (check_library) {
                std::ostringstream os;
                os << g.toString() << " is not in device '"
                   << device.name() << "' native gate library";
                out.push_back(makeFinding("QL001", os.str(), i));
            }
            continue; // placement of a non-native gate is moot
        }
        if (check_coupling && !device.supportsGate(g)) {
            std::ostringstream os;
            os << g.toString() << " uses coupling (q"
               << g.controls().front() << " -> q" << g.target()
               << ") absent from device '" << device.name() << "'";
            out.push_back(makeFinding("QL002", os.str(), i,
                                      g.controls().front()));
        }
    }
}

void
checkDeadWires(const DataflowAnalysis &dataflow,
               const LintOptions &options, std::vector<Finding> &out)
{
    if (!options.ruleEnabled("QL003"))
        return;
    for (Qubit q : dataflow.deadWires()) {
        std::ostringstream os;
        os << "qubit q" << q << " is declared but never used";
        out.push_back(makeFinding("QL003", os.str(), kNoGate, q));
    }
}

void
checkDeadPairs(const Circuit &circuit, const LintOptions &options,
               std::vector<Finding> &out)
{
    if (!options.ruleEnabled("QL004"))
        return;
    for (auto [i, j] : findCancellablePairs(circuit, nullptr)) {
        std::ostringstream os;
        os << circuit[i].toString() << " cancels with its inverse at gate "
           << j << " (every gate between them commutes)";
        Finding f = makeFinding("QL004", os.str(), i);
        f.relatedGates.push_back(j);
        out.push_back(f);
    }
}

void
checkAncillas(const Circuit &circuit, const LintOptions &options,
              std::vector<Finding> &out)
{
    if (options.ancillas.empty() || !options.ruleEnabled("QL005"))
        return;
    // After cancelling every removable inverse pair, an ancilla wire
    // that is still *targeted* by a surviving gate may end away from
    // |0>. Control-only use is fine: controls never change the wire.
    std::vector<bool> removed;
    findCancellablePairs(circuit, &removed);
    for (Qubit anc : options.ancillas) {
        if (anc >= circuit.numQubits())
            continue;
        size_t first_offender = kNoGate;
        for (size_t i = 0; i < circuit.size(); ++i) {
            if (removed[i])
                continue;
            const Gate &g = circuit[i];
            if (g.kind() == GateKind::Barrier)
                continue;
            for (Qubit t : g.targets()) {
                if (t == anc) {
                    if (first_offender == kNoGate)
                        first_offender = i;
                    break;
                }
            }
        }
        if (first_offender != kNoGate) {
            std::ostringstream os;
            os << "ancilla q" << anc << " is targeted by surviving gates "
               << "(first at gate " << first_offender
               << ") and may not be restored to |0>";
            out.push_back(makeFinding("QL005", os.str(), first_offender,
                                      anc));
        }
    }
}

} // namespace

bool
LintOptions::ruleEnabled(const char *rule_id) const
{
    if (!onlyRules.empty() && !containsId(onlyRules, rule_id))
        return false;
    return !containsId(disabledRules, rule_id);
}

std::vector<std::pair<size_t, size_t>>
findCancellablePairs(const Circuit &circuit, std::vector<bool> *removed_out)
{
    // The optimizer's cancelInversePairs relation, run to fixpoint with
    // no scan horizon: pairs found here are exactly the gates the
    // optimizer would delete given an unbounded peephole window.
    std::vector<std::pair<size_t, size_t>> pairs;
    std::vector<bool> removed(circuit.size(), false);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < circuit.size(); ++i) {
            if (removed[i] || !circuit[i].isUnitary())
                continue;
            const Gate &g = circuit[i];
            for (size_t j = i + 1; j < circuit.size(); ++j) {
                if (removed[j])
                    continue;
                const Gate &h = circuit[j];
                if (!sharesWire(g, h))
                    continue;
                if (h.isInverseOf(g)) {
                    removed[i] = true;
                    removed[j] = true;
                    pairs.emplace_back(i, j);
                    changed = true;
                    break;
                }
                if (g.commutesWith(h))
                    continue;
                break; // blocked on a shared wire
            }
        }
    }
    std::sort(pairs.begin(), pairs.end());
    if (removed_out)
        *removed_out = std::move(removed);
    return pairs;
}

std::vector<Finding>
lintCircuit(const DependencyDag &dag, const DataflowAnalysis &dataflow,
            const LintOptions &options)
{
    const Circuit &circuit = dag.circuit();
    std::vector<Finding> findings;
    if (options.device) {
        if (checkCapacity(circuit, *options.device, options, findings))
            checkDeviceLegality(circuit, *options.device, options,
                                findings);
    }
    checkDeadWires(dataflow, options, findings);
    checkDeadPairs(circuit, options, findings);
    checkAncillas(circuit, options, findings);
    // Stable order: by rule ID, then gate index, then wire.
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.ruleId != b.ruleId)
                             return a.ruleId < b.ruleId;
                         if (a.gateIndex != b.gateIndex)
                             return a.gateIndex < b.gateIndex;
                         return a.wire < b.wire;
                     });
    return findings;
}

Diagnostics
analyzeCircuit(const Circuit &circuit, const std::string &artifact,
               const LintOptions &options)
{
    DependencyDag dag(circuit);
    DataflowAnalysis dataflow(dag);
    Diagnostics report;
    report.artifact = artifact;
    report.metrics = computeDagMetrics(dag);
    report.findings = lintCircuit(dag, dataflow, options);
    return report;
}

} // namespace qsyn::analysis
