#include "analysis/dataflow.hpp"

#include <algorithm>

namespace qsyn::analysis {

namespace {

/** True when `q` is state-changing for `gate` (a target, or either
 *  wire of a Swap; controls and barrier wires are not). */
bool
isTargetWire(const Gate &gate, Qubit q)
{
    if (gate.kind() == GateKind::Barrier)
        return false;
    for (Qubit t : gate.targets()) {
        if (t == q)
            return true;
    }
    return false;
}

} // namespace

DataflowAnalysis::DataflowAnalysis(const DependencyDag &dag)
    : dag_(&dag), wires_(dag.circuit().numQubits())
{
    const Circuit &circuit = dag.circuit();
    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (g.kind() == GateKind::Barrier)
            continue; // fences order but neither uses nor defines
        for (Qubit q : g.qubits()) {
            WireFacts &w = wires_[q];
            w.uses.push_back(i);
            if (isTargetWire(g, q))
                w.targetUses.push_back(i);
            if (w.firstUse == kNoGate)
                w.firstUse = i;
            w.lastUse = i;
        }
    }
    // Idle layers: live span in layers minus layers actually occupied.
    for (WireFacts &w : wires_) {
        if (w.uses.empty())
            continue;
        size_t first_layer = dag.node(w.firstUse).asapLayer;
        size_t last_layer = dag.node(w.lastUse).asapLayer;
        std::vector<size_t> occupied;
        occupied.reserve(w.uses.size());
        for (size_t i : w.uses)
            occupied.push_back(dag.node(i).asapLayer);
        std::sort(occupied.begin(), occupied.end());
        occupied.erase(std::unique(occupied.begin(), occupied.end()),
                       occupied.end());
        w.idleLayers = (last_layer - first_layer + 1) - occupied.size();
    }
}

std::vector<Qubit>
DataflowAnalysis::deadWires() const
{
    std::vector<Qubit> dead;
    for (Qubit q = 0; q < numWires(); ++q) {
        if (wires_[q].dead())
            dead.push_back(q);
    }
    return dead;
}

bool
DataflowAnalysis::liveAt(Qubit q, size_t layer) const
{
    const WireFacts &w = wires_[q];
    if (w.dead())
        return false;
    return layer >= dag_->node(w.firstUse).asapLayer &&
           layer <= dag_->node(w.lastUse).asapLayer;
}

size_t
DataflowAnalysis::idleWireLayers() const
{
    size_t total = 0;
    for (const WireFacts &w : wires_)
        total += w.idleLayers;
    return total;
}

bool
DataflowAnalysis::reaches(size_t from, size_t to) const
{
    if (from == to)
        return true;
    if (from > to)
        return false; // edges always point at larger indices
    std::vector<bool> seen(dag_->size(), false);
    std::vector<size_t> stack{from};
    seen[from] = true;
    while (!stack.empty()) {
        size_t cur = stack.back();
        stack.pop_back();
        for (size_t s : dag_->succs(cur)) {
            if (s == to)
                return true;
            if (s < to && !seen[s]) {
                seen[s] = true;
                stack.push_back(s);
            }
        }
    }
    return false;
}

std::vector<size_t>
DataflowAnalysis::reachableFrom(size_t from) const
{
    std::vector<bool> seen(dag_->size(), false);
    std::vector<size_t> stack{from};
    seen[from] = true;
    while (!stack.empty()) {
        size_t cur = stack.back();
        stack.pop_back();
        for (size_t s : dag_->succs(cur)) {
            if (!seen[s]) {
                seen[s] = true;
                stack.push_back(s);
            }
        }
    }
    std::vector<size_t> out;
    for (size_t i = 0; i < seen.size(); ++i) {
        if (seen[i])
            out.push_back(i);
    }
    return out;
}

} // namespace qsyn::analysis
