#include "cli/options.hpp"

#include <ostream>
#include <sstream>

#include <limits>
#include <memory>

#include <cstdlib>

#include "analysis/rules.hpp"
#include "cache/cache.hpp"
#include "common/deadline.hpp"
#include "common/errors.hpp"
#include "obs/expo.hpp"
#include "obs/flight.hpp"
#include "common/numeric.hpp"
#include "common/strings.hpp"
#include "device/loader.hpp"
#include "device/registry.hpp"
#include "esop/cascade.hpp"
#include "frontend/loader.hpp"
#include "frontend/pla_parser.hpp"
#include "decompose/rebase.hpp"
#include "frontend/circuit_drawer.hpp"
#include "frontend/qasm_writer.hpp"
#include "core/batch.hpp"
#include "core/report.hpp"
#include "opt/schedule.hpp"

#include <fstream>

namespace qsyn::cli {

namespace {

decompose::McxStrategy
strategyFromName(const std::string &name)
{
    if (name == "auto")
        return decompose::McxStrategy::Auto;
    if (name == "clean")
        return decompose::McxStrategy::CleanVChain;
    if (name == "dirty")
        return decompose::McxStrategy::DirtyVChain;
    if (name == "split")
        return decompose::McxStrategy::Split;
    if (name == "roots")
        return decompose::McxStrategy::Roots;
    throw UserError("unknown MCX strategy '" + name +
                    "' (auto|clean|dirty|split|roots)");
}

} // namespace

double
parseDoubleValue(const std::string &flag, const std::string &value)
{
    double v = 0.0;
    if (!parseFiniteDouble(value, &v))
        throw UserError("bad numeric value '" + value + "' for " + flag);
    return v;
}

size_t
parseCountValue(const std::string &flag, const std::string &value)
{
    unsigned long long v = 0;
    if (!parseUnsigned(value, &v) ||
        v > std::numeric_limits<size_t>::max())
        throw UserError("bad count '" + value + "' for " + flag);
    return static_cast<size_t>(v);
}

CliOptions
parseCliArguments(const std::vector<std::string> &args)
{
    CliOptions opts;
    size_t i = 0;
    auto next_value = [&](const std::string &flag) -> std::string {
        if (i + 1 >= args.size())
            throw UserError("missing value for " + flag);
        return args[++i];
    };

    for (; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "-h" || arg == "--help") {
            opts.showHelp = true;
        } else if (arg == "--list-devices") {
            opts.listDevices = true;
        } else if (arg == "-d" || arg == "--device") {
            opts.deviceName = next_value(arg);
        } else if (arg == "--device-file") {
            opts.deviceFile = next_value(arg);
        } else if (arg == "--simulator-qubits") {
            opts.simulatorQubits = static_cast<Qubit>(
                parseDoubleValue(arg, next_value(arg)));
        } else if (arg == "-o" || arg == "--output") {
            opts.outputPath = next_value(arg);
        } else if (arg == "-j" || arg == "--jobs") {
            opts.jobs = parseCountValue(arg, next_value(arg));
        } else if (arg == "--share-manager") {
            opts.shareManager = true;
        } else if (arg == "--no-share-manager") {
            opts.shareManager = false;
        } else if (arg == "--no-optimize") {
            opts.compile.optimize = false;
        } else if (arg == "--no-ti-optimize") {
            opts.compile.optimizeTechIndependent = false;
        } else if (arg == "--no-verify") {
            opts.compile.verify = VerifyMode::Off;
        } else if (arg == "--verify-miter") {
            opts.compile.verify = VerifyMode::Miter;
        } else if (arg == "--placement") {
            std::string value = next_value(arg);
            if (value == "identity")
                opts.compile.placement =
                    route::PlacementStrategy::Identity;
            else if (value == "greedy")
                opts.compile.placement = route::PlacementStrategy::Greedy;
            else
                throw UserError("unknown placement '" + value +
                                "' (identity|greedy)");
        } else if (arg == "--router") {
            std::string value = next_value(arg);
            if (!route::parseRouterName(value,
                                        &opts.compile.routing.router))
                throw UserError("unknown router '" + value +
                                "' (ctr|sabre)");
        } else if (arg == "--mcx") {
            opts.compile.mcxStrategy =
                strategyFromName(next_value(arg));
        } else if (arg == "--meet-in-middle") {
            opts.compile.routing.meetInMiddle = true;
        } else if (arg == "--dynamic-layout") {
            opts.compile.routing.dynamicLayout = true;
        } else if (arg == "--fidelity-aware") {
            opts.compile.routing.fidelityAware = true;
        } else if (arg == "--test-omit-swap-back") {
            // Hidden fault-injection flag (absent from --help): breaks
            // CTR swap-back so the qfuzz oracle stack has a known bug
            // to catch; see route::RouteOptions::testOmitSwapBack.
            opts.compile.routing.testOmitSwapBack = true;
        } else if (arg == "--phase-poly") {
            opts.compile.optimizer.enablePhasePolynomial = true;
        } else if (arg == "--weight-t") {
            opts.compile.optimizer.weights.tWeight =
                parseDoubleValue(arg, next_value(arg));
        } else if (arg == "--weight-cnot") {
            opts.compile.optimizer.weights.cnotWeight =
                parseDoubleValue(arg, next_value(arg));
        } else if (arg == "--weight-gate") {
            opts.compile.optimizer.weights.gateWeight =
                parseDoubleValue(arg, next_value(arg));
        } else if (arg == "--draw") {
            opts.drawCircuits = true;
        } else if (arg == "--schedule") {
            opts.printSchedule = true;
        } else if (arg == "--analyze") {
            opts.analyze = true;
        } else if (arg == "--report") {
            opts.reportPath = next_value(arg);
        } else if (arg == "--trace-json") {
            opts.tracePath = next_value(arg);
        } else if (arg == "--metrics-json") {
            opts.metricsPath = next_value(arg);
        } else if (arg == "--metrics-prom") {
            opts.metricsPromPath = next_value(arg);
        } else if (arg == "--stats-interval") {
            opts.statsIntervalSeconds =
                parseDoubleValue(arg, next_value(arg));
            if (opts.statsIntervalSeconds < 0.0)
                throw UserError("--stats-interval must be >= 0");
        } else if (arg == "--crash-dump") {
            opts.crashDumpDir = next_value(arg);
        } else if (arg == "--test-crash") {
            // Hidden fault-injection flag (absent from --help): abort()
            // after the compile so the crash-dump subprocess test has a
            // deterministic crash; see --test-omit-swap-back for the
            // pattern.
            opts.testCrash = true;
        } else if (arg == "--log-level") {
            std::string value = next_value(arg);
            obs::LogLevel level;
            if (!obs::parseLogLevel(value, &level))
                throw UserError("unknown log level '" + value +
                                "' (quiet|info|debug|trace)");
            opts.logLevel = level;
        } else if (arg == "--rebase") {
            std::string value = next_value(arg);
            if (value != "cz" && value != "cnot")
                throw UserError("unknown rebase target '" + value +
                                "' (cz|cnot)");
            opts.rebase = value;
        } else if (arg == "--cache-dir") {
            opts.cacheDir = next_value(arg);
        } else if (arg == "--no-cache") {
            opts.useCache = false;
        } else if (arg == "--cache-max-mb") {
            opts.cacheMaxMb = parseCountValue(arg, next_value(arg));
            if (opts.cacheMaxMb == 0)
                throw UserError("--cache-max-mb must be >= 1");
        } else if (arg == "--deadline") {
            opts.deadlineSeconds =
                parseDoubleValue(arg, next_value(arg));
            if (opts.deadlineSeconds < 0.0)
                throw UserError("--deadline must be >= 0");
        } else if (arg == "--report-deterministic") {
            opts.reportDeterministic = true;
        } else if (arg == "--remote") {
            opts.remoteSocket = next_value(arg);
        } else if (arg == "--quiet") {
            opts.printStats = false;
        } else if (arg == "--no-emit") {
            opts.emitQasm = false;
        } else if (!arg.empty() && arg[0] == '-') {
            throw UserError("unknown option '" + arg + "'");
        } else {
            opts.inputs.push_back(arg);
        }
    }

    if (!opts.showHelp && !opts.listDevices) {
        if (opts.inputs.empty())
            throw UserError("no input file (try --help)");
        if (opts.inputs.size() > 1) {
            // Batch output is an ordered stdout/stderr stream; the
            // single-file side channels have no per-input story yet.
            if (!opts.outputPath.empty())
                throw UserError(
                    "-o/--output needs a single input; batch QASM "
                    "goes to stdout in input order");
            if (!opts.reportPath.empty())
                throw UserError("--report needs a single input");
            if (opts.drawCircuits)
                throw UserError("--draw needs a single input");
            if (opts.printSchedule)
                throw UserError("--schedule needs a single input");
            if (opts.analyze)
                throw UserError("--analyze needs a single input");
        }
        if (!opts.remoteSocket.empty()) {
            // Remote mode ships sources to the daemon and relays its
            // bytes; anything that needs local pipeline internals
            // cannot be honored and is rejected, not ignored.
            auto remoteReject = [](bool bad, const char *flag) {
                if (bad)
                    throw UserError(
                        std::string(flag) +
                        " is local-only and cannot combine with "
                        "--remote");
            };
            remoteReject(!opts.deviceFile.empty(), "--device-file");
            remoteReject(opts.drawCircuits, "--draw");
            remoteReject(opts.printSchedule, "--schedule");
            remoteReject(opts.analyze, "--analyze");
            remoteReject(!opts.tracePath.empty(), "--trace-json");
            remoteReject(!opts.metricsPath.empty(), "--metrics-json");
            remoteReject(!opts.metricsPromPath.empty(),
                         "--metrics-prom");
            remoteReject(!opts.rebase.empty(), "--rebase");
            remoteReject(!opts.cacheDir.empty(), "--cache-dir");
            remoteReject(opts.testCrash, "--test-crash");
        }
    }
    return opts;
}

std::string
cliHelpText()
{
    return
        "qsync - technology-dependent quantum logic synthesis\n"
        "\n"
        "usage: qsync [options] <circuit.{qasm,qc,real,pla}>...\n"
        "\n"
        "Several inputs compile as a batch: QASM is concatenated to\n"
        "stdout in input order (byte-identical for any --jobs value)\n"
        "and per-file statistics go to stderr.\n"
        "\n"
        "options:\n"
        "  -d, --device <name>      built-in target (default ibmqx4);\n"
        "                           'simulator' = unconstrained\n"
        "      --device-file <f>    load a custom coupling-map file\n"
        "      --simulator-qubits N simulator register width\n"
        "  -o, --output <file>     write QASM here (default stdout)\n"
        "  -j, --jobs <n>           compile a multi-input batch on n\n"
        "                           worker threads (0 = one per core)\n"
        "      --share-manager      batch workers verify against one\n"
        "                           shared QMDD package (default)\n"
        "      --no-share-manager   private QMDD package per circuit\n"
        "      --placement <p>      identity | greedy\n"
        "      --router <r>         ctr (paper reference) | sabre\n"
        "                           (DAG-lookahead, fewer SWAPs)\n"
        "      --mcx <s>            auto|clean|dirty|split|roots\n"
        "      --meet-in-middle     CTR variant: move both endpoints\n"
        "      --dynamic-layout     persistent-swap routing variant\n"
        "      --fidelity-aware     route around high-error couplings\n"
        "      --phase-poly         phase-polynomial T-count reduction\n"
        "      --weight-t <w>       Eqn. 2 T-gate weight (default 0.5)\n"
        "      --weight-cnot <w>    Eqn. 2 CNOT weight (default 0.25)\n"
        "      --weight-gate <w>    Eqn. 2 volume weight (default 1)\n"
        "      --no-optimize        skip local optimization\n"
        "      --no-ti-optimize     skip the technology-independent\n"
        "                           optimization round\n"
        "      --no-verify          skip QMDD verification\n"
        "      --verify-miter       alternating-miter verification\n"
        "      --draw               ASCII-draw input and output\n"
        "      --schedule           print depth/parallelism analysis\n"
        "      --analyze            lint the compiled circuit (dependency\n"
        "                           DAG metrics + QLxxx findings; also\n"
        "                           embedded in --report)\n"
        "      --report <file>      write a JSON compile report\n"
        "      --trace-json <file>  write a Chrome trace-event file\n"
        "                           (open in Perfetto / chrome://tracing)\n"
        "      --metrics-json <file> write a metrics snapshot (counters,\n"
        "                           gauges, QMDD table hit rates)\n"
        "      --metrics-prom <file> write Prometheus text exposition\n"
        "                           (qsyn_* series; scrape or node_\n"
        "                           exporter textfile collector)\n"
        "      --stats-interval <s> while a batch runs, log progress\n"
        "                           and refresh --metrics-prom every\n"
        "                           s seconds\n"
        "      --crash-dump <dir>   arm the flight-recorder crash\n"
        "                           handler; a crash leaves\n"
        "                           qsyn-crash-<pid>.json in <dir>\n"
        "      --log-level <l>      quiet | info | debug | trace\n"
        "                           (default: $QSYN_LOG or quiet)\n"
        "      --rebase <basis>     cz | cnot two-qubit output basis\n"
        "      --cache-dir <dir>    persistent compile cache: identical\n"
        "                           (circuit, device, options) compiles\n"
        "                           replay from disk\n"
        "      --no-cache           disable compile memoization (also\n"
        "                           the in-process batch tier)\n"
        "      --cache-max-mb <n>   on-disk cache budget before LRU\n"
        "                           eviction (default 256)\n"
        "      --deadline <s>       per-compile wall-time budget in\n"
        "                           seconds; an expired compile stops\n"
        "                           cleanly with a diagnosed error\n"
        "      --report-deterministic\n"
        "                           omit timings and QMDD counters from\n"
        "                           --report so the bytes are stable\n"
        "                           across runs (and match --remote)\n"
        "      --remote <socket>    send compiles to a qsynd daemon on\n"
        "                           this Unix socket; QASM and --report\n"
        "                           bytes come back verbatim\n"
        "      --quiet              suppress the statistics report\n"
        "      --no-emit            suppress QASM output\n"
        "      --list-devices       print the device library and exit\n"
        "  -h, --help               this text\n";
}

namespace {

/** Installs a Sink for the run when any observability output was
 *  requested; uninstalls on scope exit (exceptions included). */
class SinkInstallation
{
  public:
    explicit SinkInstallation(bool enable) : installed_(enable)
    {
        if (installed_)
            obs::installSink(&sink_);
    }
    ~SinkInstallation()
    {
        if (installed_)
            obs::installSink(nullptr);
    }

    SinkInstallation(const SinkInstallation &) = delete;
    SinkInstallation &operator=(const SinkInstallation &) = delete;

    bool installed() const { return installed_; }
    obs::Sink &sink() { return sink_; }

  private:
    obs::Sink sink_;
    bool installed_;
};

} // namespace

int
runCli(const CliOptions &options, std::ostream &out, std::ostream &err)
{
    if (options.showHelp) {
        out << cliHelpText();
        return 0;
    }
    if (options.listDevices) {
        for (const Device &dev : allBuiltinDevices())
            out << dev.summary() << "\n";
        out << "simulator (any size; no coupling restrictions)\n";
        return 0;
    }
    if (options.logLevel)
        obs::setLogLevel(*options.logLevel);
    // The flight recorder is always on for tool runs (one relaxed
    // store per span event); --crash-dump additionally arms the signal
    // handler that turns the ring into qsyn-crash-<pid>.json.
    obs::flight::setRecording(true);
    if (!options.crashDumpDir.empty()) {
        obs::flight::CrashConfig crash_config;
        crash_config.dir = options.crashDumpDir;
        obs::flight::installCrashHandler(crash_config);
    }
    SinkInstallation obs_install(!options.tracePath.empty() ||
                                 !options.metricsPath.empty() ||
                                 !options.metricsPromPath.empty() ||
                                 options.statsIntervalSeconds > 0.0);
    obs::nameCurrentThread("qsync-main");

    if (!options.remoteSocket.empty())
        return runRemote(options, out, err);

    try {
        Device device = [&]() -> Device {
            if (!options.deviceFile.empty())
                return loadDeviceFile(options.deviceFile);
            if (options.deviceName == "simulator")
                return Device::simulator(options.simulatorQubits);
            return builtinDevice(options.deviceName);
        }();

        // The compile cache: always holds the in-process tier for
        // batch dedup; --cache-dir adds the persistent store.
        std::unique_ptr<cache::CompileCache> compile_cache;
        if (options.useCache) {
            cache::CacheConfig ccfg;
            ccfg.dir = options.cacheDir;
            ccfg.maxDiskBytes =
                static_cast<std::uint64_t>(options.cacheMaxMb) << 20;
            compile_cache =
                std::make_unique<cache::CompileCache>(ccfg);
        }
        auto printCacheStats = [&]() {
            if (compile_cache == nullptr || !options.printStats)
                return;
            cache::CacheStats cs = compile_cache->stats();
            if (cs.hits + cs.misses == 0)
                return;
            err << "cache:             " << cs.hits << " hit(s), "
                << cs.misses << " miss(es) (" << cs.diskHits
                << " from disk, " << cs.singleFlightShared
                << " shared in flight)";
            if (!options.cacheDir.empty()) {
                err << ", " << cs.diskEntries << " entr"
                    << (cs.diskEntries == 1 ? "y" : "ies") << " / "
                    << cs.diskBytes << " bytes on disk, "
                    << cs.diskEvictions << " evicted";
            }
            err << "\n";
        };

        if (options.inputs.size() > 1) {
            // Batch mode: one Compiler per input on a worker pool,
            // results reported and emitted strictly in input order.
            BatchCompiler batch(device, options.compile);
            batch.setShareManager(options.shareManager);
            batch.setJobDeadline(options.deadlineSeconds);
            batch.setCache(compile_cache.get());
            batch.setStatsInterval(options.statsIntervalSeconds,
                                   options.metricsPromPath);
            std::vector<BatchItem> items =
                batch.compileFiles(options.inputs, options.jobs);
            const BatchSummary &sum = batch.summary();
            if (options.printStats) {
                err << "device:            " << device.summary() << "\n";
                for (const BatchItem &item : items) {
                    if (item.ok) {
                        err << item.inputPath << ": T "
                            << item.result.optimizedM.tCount << ", gates "
                            << item.result.optimizedM.gates << ", cost "
                            << item.result.optimizedM.cost << " ("
                            << item.result.percentCostDecrease()
                            << "% decrease), " << item.seconds << " s\n";
                    } else {
                        err << item.inputPath << ": error: " << item.error
                            << "\n";
                    }
                }
                err << "batch:             " << sum.succeeded << "/"
                    << sum.circuits << " ok on " << sum.jobs
                    << " worker(s), " << sum.wallSeconds << " s wall ("
                    << sum.sumSeconds << " s summed)\n";
            }
            printCacheStats();
            if (options.emitQasm) {
                for (const BatchItem &item : items) {
                    if (!item.ok)
                        continue;
                    Circuit emitted = item.result.optimized;
                    if (options.rebase == "cz")
                        emitted = decompose::rebaseToCz(emitted);
                    else if (options.rebase == "cnot")
                        emitted = decompose::rebaseToCnot(emitted);
                    frontend::QasmWriterOptions wopts;
                    wopts.headerComment = "qsyn: " + item.inputPath +
                                          " mapped to " + device.name();
                    out << frontend::writeQasm(emitted, wopts);
                }
            }
            batch.publishMetrics();
            if (compile_cache != nullptr)
                compile_cache->publishMetrics();
            if (!options.tracePath.empty()) {
                std::ofstream trace(options.tracePath);
                if (!trace)
                    throw UserError("cannot write trace '" +
                                    options.tracePath + "'");
                trace << obs_install.sink().traceJson();
                err << "wrote " << options.tracePath << "\n";
            }
            if (!options.metricsPath.empty()) {
                std::ofstream metrics(options.metricsPath);
                if (!metrics)
                    throw UserError("cannot write metrics '" +
                                    options.metricsPath + "'");
                metrics << obs_install.sink().metricsJson();
                err << "wrote " << options.metricsPath << "\n";
            }
            if (!options.metricsPromPath.empty()) {
                std::string prom_error;
                if (!obs::writePrometheusFile(
                        obs_install.sink().metrics(),
                        options.metricsPromPath, &prom_error))
                    throw UserError("cannot write metrics: " +
                                    prom_error);
                err << "wrote " << options.metricsPromPath << "\n";
            }
            if (sum.failed == 0)
                return 0;
            for (const BatchItem &item : items)
                if (item.internalError)
                    return 2;
            return 1;
        }

        const std::string &inputPath = options.inputs.front();
        Circuit input = [&]() -> Circuit {
            if (endsWith(toLower(inputPath), ".pla")) {
                // Classical path of Fig. 2: ESOP front end.
                return esop::synthesizePla(
                    frontend::loadPlaFile(inputPath));
            }
            return frontend::loadCircuitFile(inputPath);
        }();

        CompileOptions copts = options.compile;
        if (obs::logEnabled(obs::LogLevel::Debug))
            copts.optimizer.collectPassStats = true;
        // Deterministic reports must not depend on whether an obs sink
        // happens to be installed (a sink flips the optimizer into
        // detailed pass stats); force the flag so the pass table is
        // byte-identical to what a qsynd daemon renders.
        if (options.reportDeterministic)
            copts.optimizer.collectPassStats = true;
        Compiler compiler(device, copts);
        deadline::Scope compile_deadline(options.deadlineSeconds);
        // Single-input compiles only consult the cache when it can
        // persist across runs; a process-local tier would never hit.
        std::shared_ptr<const CachedCompile> artifact =
            compiler.compileCached(input,
                                   options.cacheDir.empty()
                                       ? nullptr
                                       : compile_cache.get());
        const CompileResult &result = artifact->result;

        if (options.testCrash) {
            // Fault injection for the crash-dump subprocess test: the
            // ring now holds the compile's span events, so the dump
            // has real content to assert on.
            std::abort();
        }

        if (obs::logEnabled(obs::LogLevel::Debug) &&
            !result.optReport.passes.empty()) {
            err << "optimizer passes (" << result.optReport.rounds
                << " rounds):\n";
            for (const opt::PassReport &p : result.optReport.passes) {
                err << "  " << p.name << ": " << p.invocations
                    << " invocations, " << p.changedRounds
                    << " effective, " << p.gatesRemoved
                    << " gates removed, cost delta " << p.costDelta
                    << "\n";
            }
        }

        if (options.printStats) {
            err << "device:            " << device.summary() << "\n";
            err << "tech-independent:  T " << result.techIndependent.tCount
                << ", gates " << result.techIndependent.gates
                << ", cost " << result.techIndependent.cost << "\n";
            err << "mapped unopt:      T " << result.unoptimized.tCount
                << ", gates " << result.unoptimized.gates << ", cost "
                << result.unoptimized.cost << "\n";
            err << "mapped optimized:  T " << result.optimizedM.tCount
                << ", gates " << result.optimizedM.gates << ", cost "
                << result.optimizedM.cost << " ("
                << result.percentCostDecrease() << "% decrease)\n";
            err << "routing:           "
                << route::routerName(options.compile.routing.router)
                << ": " << result.routeStats.nativeCnots << " native, "
                << result.routeStats.reversedCnots << " reversed, "
                << result.routeStats.reroutedCnots
                << " rerouted CNOTs, " << result.routeStats.swapsInserted
                << " swaps\n";
            if (result.verifyRan) {
                err << "verification:      "
                    << dd::equivalenceName(result.verification) << "\n";
            }
            err << "time:              " << result.totalSeconds << " s\n";
        }
        printCacheStats();
        if (options.drawCircuits) {
            frontend::DrawOptions dopts;
            dopts.maxColumns = 40;
            err << "\n--- input ---\n"
                << frontend::drawCircuit(input, dopts);
            err << "\n--- compiled ---\n"
                << frontend::drawCircuit(result.optimized, dopts)
                << "\n";
        }
        if (options.printSchedule) {
            opt::Schedule schedule = opt::scheduleAsap(result.optimized);
            opt::ScheduleStats sstats =
                computeScheduleStats(result.optimized, schedule);
            err << "schedule:          depth " << sstats.depth
                << ", avg parallelism " << sstats.parallelism
                << ", widest layer " << sstats.maxLayerWidth
                << ", idle wire-layers " << sstats.idleWireLayers
                << "\n";
        }
        std::optional<analysis::Diagnostics> diagnostics;
        if (options.analyze) {
            analysis::LintOptions lopts;
            lopts.device = &device;
            lopts.ancillas = result.ancillas;
            diagnostics = analysis::analyzeCircuit(
                result.optimized, options.inputs.front(), lopts);
            const analysis::DagMetrics &dm = diagnostics->metrics;
            err << "analysis:          depth " << dm.depth
                << ", critical gates " << dm.criticalGates
                << ", dag edges " << dm.edges << ", parallelism "
                << dm.parallelism << "\n";
            for (const analysis::Finding &f : diagnostics->findings)
                err << findingToString(*diagnostics, f) << "\n";
            err << "analysis:          "
                << diagnostics->countAtLeast(analysis::Severity::Error)
                << " error(s), "
                << (diagnostics->countAtLeast(analysis::Severity::Warning) -
                    diagnostics->countAtLeast(analysis::Severity::Error))
                << " warning(s)\n";
            if (obs::Sink *s = obs::sink()) {
                obs::MetricsRegistry &m = s->metrics();
                m.addCounter("analysis.runs", 1.0);
                m.addCounter(
                    "analysis.findings",
                    static_cast<double>(diagnostics->findings.size()));
                m.addCounter("analysis.errors",
                             static_cast<double>(diagnostics->countAtLeast(
                                 analysis::Severity::Error)));
                m.addCounter("analysis.dag_edges",
                             static_cast<double>(dm.edges));
                m.addCounter("analysis.depth",
                             static_cast<double>(dm.depth));
            }
        }
        if (!options.reportPath.empty()) {
            std::ofstream report(options.reportPath);
            if (!report)
                throw UserError("cannot write report '" +
                                options.reportPath + "'");
            ReportOptions ropts = options.reportDeterministic
                                      ? ReportOptions::deterministic()
                                      : ReportOptions{};
            if (diagnostics)
                ropts.analysis = &*diagnostics;
            report << compileReportJson(result, device, ropts);
            err << "wrote " << options.reportPath << "\n";
        }
        Circuit emitted = result.optimized;
        if (options.rebase == "cz")
            emitted = decompose::rebaseToCz(emitted);
        else if (options.rebase == "cnot")
            emitted = decompose::rebaseToCnot(emitted);
        if (options.emitQasm) {
            frontend::QasmWriterOptions wopts;
            wopts.headerComment = "qsyn: mapped to " + device.name();
            if (options.outputPath.empty()) {
                out << frontend::writeQasm(emitted, wopts);
            } else {
                frontend::writeQasmFile(emitted, options.outputPath,
                                        wopts);
                err << "wrote " << options.outputPath << "\n";
            }
        }
        if (compile_cache != nullptr)
            compile_cache->publishMetrics();
        if (!options.tracePath.empty()) {
            std::ofstream trace(options.tracePath);
            if (!trace)
                throw UserError("cannot write trace '" +
                                options.tracePath + "'");
            trace << obs_install.sink().traceJson();
            err << "wrote " << options.tracePath << "\n";
        }
        if (!options.metricsPath.empty()) {
            std::ofstream metrics(options.metricsPath);
            if (!metrics)
                throw UserError("cannot write metrics '" +
                                options.metricsPath + "'");
            metrics << obs_install.sink().metricsJson();
            err << "wrote " << options.metricsPath << "\n";
        }
        if (!options.metricsPromPath.empty()) {
            std::string prom_error;
            if (!obs::writePrometheusFile(obs_install.sink().metrics(),
                                          options.metricsPromPath,
                                          &prom_error))
                throw UserError("cannot write metrics: " + prom_error);
            err << "wrote " << options.metricsPromPath << "\n";
        }
        return 0;
    } catch (const UserError &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    } catch (const Error &e) {
        err << "internal failure: " << e.what() << "\n";
        return 2;
    }
}

} // namespace qsyn::cli
