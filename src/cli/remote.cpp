/**
 * @file
 * `qsync --remote`: the thin-client side of the qsynd daemon. Reads
 * each input file, ships its bytes to the daemon, and relays the
 * returned QASM and report verbatim — the daemon renders both with
 * the same writer the local path uses, so `qsync --remote` and
 * `qsync --report-deterministic` produce byte-identical artifacts for
 * the same inputs and flags.
 */

#include "cli/options.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/errors.hpp"
#include "common/strings.hpp"
#include "service/client.hpp"

namespace qsyn::cli {

namespace {

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw UserError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

const char *
wireFormat(const std::string &path)
{
    std::string lower = toLower(path);
    if (endsWith(lower, ".qc"))
        return "qc";
    if (endsWith(lower, ".real"))
        return "real";
    if (endsWith(lower, ".pla"))
        return "pla";
    return "qasm";
}

} // namespace

int
runRemote(const CliOptions &options, std::ostream &out,
          std::ostream &err)
{
    try {
        service::Client client =
            service::Client::connectUnix(options.remoteSocket);

        std::string qasm;
        for (const std::string &inputPath : options.inputs) {
            using service::Json;
            Json request = Json::makeObject();
            request.object["op"] = Json::makeString("compile");
            request.object["source"] =
                Json::makeString(readFileBytes(inputPath));
            request.object["format"] =
                Json::makeString(wireFormat(inputPath));
            // The daemon names the circuit from this field the same
            // way the local loader names it from the path (its stem),
            // so report bytes agree.
            request.object["name"] = Json::makeString(
                std::filesystem::path(inputPath).stem().string());
            request.object["device"] =
                Json::makeString(options.deviceName);
            request.object["simulator_qubits"] = Json::makeNumber(
                static_cast<double>(options.simulatorQubits));
            request.object["optimize"] =
                Json::makeBool(options.compile.optimize);
            request.object["verify"] = Json::makeString(
                options.compile.verify == VerifyMode::Off ? "off"
                : options.compile.verify == VerifyMode::Miter
                    ? "miter"
                    : "full");
            request.object["placement"] = Json::makeString(
                options.compile.placement ==
                        route::PlacementStrategy::Greedy
                    ? "greedy"
                    : "identity");
            request.object["router"] = Json::makeString(
                route::routerName(options.compile.routing.router));
            if (options.deadlineSeconds > 0.0) {
                request.object["deadline_ms"] = Json::makeNumber(
                    options.deadlineSeconds * 1e3);
            }

            Json response = client.call(request);
            if (!response.boolOr("ok", false))
                service::Client::throwError(response);

            qasm += response.stringOr("qasm", "");
            if (options.printStats) {
                err << inputPath << ": gates "
                    << response.numberOr("gates", 0.0) << ", cost "
                    << response.numberOr("cost", 0.0)
                    << (response.boolOr("verified", false)
                            ? ", verified"
                            : "")
                    << " (remote)\n";
            }
            if (!options.reportPath.empty()) {
                std::ofstream report(options.reportPath);
                if (!report)
                    throw UserError("cannot write report '" +
                                    options.reportPath + "'");
                report << response.stringOr("report", "");
                err << "wrote " << options.reportPath << "\n";
            }
        }

        if (options.emitQasm) {
            if (options.outputPath.empty()) {
                out << qasm;
            } else {
                std::ofstream file(options.outputPath,
                                   std::ios::binary);
                if (!file)
                    throw UserError("cannot write '" +
                                    options.outputPath + "'");
                file << qasm;
                err << "wrote " << options.outputPath << "\n";
            }
        }
        return 0;
    } catch (const UserError &e) {
        err << "error: " << e.what() << "\n";
        return 1;
    } catch (const Error &e) {
        err << "internal failure: " << e.what() << "\n";
        return 2;
    }
}

} // namespace qsyn::cli
