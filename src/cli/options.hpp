/**
 * @file
 * Command-line interface of the qsync compiler driver: argument
 * grammar, parsed options, and help text. Kept in the library (rather
 * than the tool's main.cpp) so it is unit-testable.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "obs/obs.hpp"

namespace qsyn::cli {

/** Fully parsed command line. */
struct CliOptions
{
    /**
     * Input circuit files (.qasm/.qc/.real) or PLAs (.pla). One input
     * compiles inline; several compile as a batch (see --jobs),
     * emitted strictly in input order.
     */
    std::vector<std::string> inputs;
    /** Batch worker threads (1 = sequential, 0 = hardware threads). */
    size_t jobs = 1;
    /** Share one concurrent QMDD package across batch workers'
     *  verifications (--no-share-manager turns it off). Output bytes
     *  are identical either way; sharing dedupes node universes. */
    bool shareManager = true;
    /** Output QASM path; empty = stdout. */
    std::string outputPath;
    /** Built-in device name, or empty when deviceFile is used. */
    std::string deviceName = "ibmqx4";
    /** Custom device description file (overrides deviceName). */
    std::string deviceFile;
    /** Simulator width (used when deviceName == "simulator"). */
    Qubit simulatorQubits = 32;

    CompileOptions compile;
    bool printStats = true;
    bool emitQasm = true;
    bool showHelp = false;
    bool listDevices = false;
    /** Print ASCII drawings of the input and compiled circuits. */
    bool drawCircuits = false;
    /** Print the ASAP schedule summary of the compiled circuit. */
    bool printSchedule = false;
    /** Run the static analyzer over the compiled circuit: DAG metrics
     *  plus lint findings to stderr, an "analysis" object in --report,
     *  and analysis.* obs counters. */
    bool analyze = false;
    /** Write a JSON compile report here (empty = none). */
    std::string reportPath;
    /** Write a Chrome trace-event JSON file here (empty = none);
     *  loadable in Perfetto / chrome://tracing. */
    std::string tracePath;
    /** Write a metrics snapshot JSON file here (empty = none). */
    std::string metricsPath;
    /** Write Prometheus text exposition here at exit (empty = none);
     *  with --stats-interval the file is also rewritten periodically
     *  while a batch runs. */
    std::string metricsPromPath;
    /** Periodic batch stats interval, seconds (0 = off). */
    double statsIntervalSeconds = 0.0;
    /** Arm the flight-recorder crash handler; a crashing run dumps
     *  `qsyn-crash-<pid>.json` into this directory (empty = off). */
    std::string crashDumpDir;
    /** Hidden fault-injection flag (--test-crash): abort() after the
     *  compile so the crash-dump path has a deterministic test. */
    bool testCrash = false;
    /** --log-level override; unset = QSYN_LOG env (default quiet). */
    std::optional<obs::LogLevel> logLevel;
    /** Rebase the emitted circuit's two-qubit basis: "" (keep CNOT)
     *  or "cz" (emit CZ + Hadamards, for CZ-native platforms). */
    std::string rebase;

    /** Persistent compile-cache directory (--cache-dir); empty = the
     *  in-process tier only. */
    std::string cacheDir;
    /** Memoize compiles at all (--no-cache clears it). */
    bool useCache = true;
    /** On-disk cache budget in MiB (--cache-max-mb). */
    size_t cacheMaxMb = 256;

    /** Per-compile wall-time budget in seconds (--deadline; 0 = off).
     *  Cooperative: polled at the per-gate QMDD safe point, so an
     *  expired compile unwinds cleanly with a diagnosed error. */
    double deadlineSeconds = 0.0;
    /** Render --report with ReportOptions::deterministic(): no
     *  timings, no QMDD table counters. Byte-comparable across runs
     *  and against a `qsync --remote` report. */
    bool reportDeterministic = false;
    /** qsynd Unix socket (--remote); non-empty sends every compile to
     *  the daemon instead of compiling in-process. */
    std::string remoteSocket;
};

/**
 * Parse argv-style arguments (excluding argv[0]). Throws UserError on
 * malformed input.
 */
CliOptions parseCliArguments(const std::vector<std::string> &args);

/** @name Strict numeric flag-value parsers.
 * Shared by every qsyn tool so a value like "x" or "-2" for --jobs is
 * a diagnosed UserError everywhere, never an uncaught std::stoul
 * exception. `flag` names the offending option in the message.
 */
/// @{
double parseDoubleValue(const std::string &flag, const std::string &value);
size_t parseCountValue(const std::string &flag, const std::string &value);
/// @}

/** The --help text. */
std::string cliHelpText();

/**
 * Run the compiler per the options; returns the process exit code.
 * Output goes to `out`, diagnostics to `err`.
 */
int runCli(const CliOptions &options, std::ostream &out,
           std::ostream &err);

/**
 * `qsync --remote`: ship each input to a qsynd daemon and emit the
 * returned QASM/report bytes verbatim (they match what the same flags
 * would produce locally). Called by runCli; exposed for tests.
 */
int runRemote(const CliOptions &options, std::ostream &out,
              std::ostream &err);

} // namespace qsyn::cli
