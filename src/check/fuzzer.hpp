/**
 * @file
 * The differential fuzzing loop behind tools/qfuzz: generate a seeded
 * random (circuit, device, flags) case, push it through the full
 * compile pipeline, judge the result with the oracle stack, and shrink
 * anything that fails to a minimal on-disk reproducer.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/corpus.hpp"
#include "check/oracles.hpp"
#include "check/shrink.hpp"

namespace qsyn::check {

/** Configuration of one fuzzing run. */
struct FuzzOptions
{
    /** Master seed; every case derives its own sub-seed from it, so a
     *  run is reproducible from (seed, iteration index) alone. */
    std::uint64_t seed = 1;
    /** Cases to run (0 = until the time budget expires). */
    size_t iterations = 100;
    /** Wall-clock box in seconds (0 = unbounded). */
    double timeBudgetSeconds = 0.0;
    /** Input circuit size caps. */
    Qubit maxQubits = 6;
    size_t maxGates = 32;
    /** Probability a case targets a random connected device rather
     *  than a built-in machine. */
    double randomDeviceFraction = 0.5;
    /** Force the hidden CTR swap-back fault into every case (the
     *  deliberate bug --smoke proves the oracle stack catches). */
    bool injectSwapBackFault = false;
    /** Save shrunk reproducers here; empty = report only. */
    std::string corpusDir;
    /** Oracle tuning, shared by every case and the shrinker. */
    OracleOptions oracle;
    /** Predicate-evaluation budget per shrink. */
    size_t shrinkBudget = 300;
    /** Log every case (not just failures). */
    bool verbose = false;
};

/** One caught-and-shrunk failure. */
struct FuzzFailure
{
    size_t iteration = 0;
    std::uint64_t caseSeed = 0;
    /** "qmdd", "statevector", ... or "compile-error". */
    std::string oracle;
    /** Oracle evidence or exception text. */
    std::string details;
    /** Stage blame ("route", "optimize:cancellation", ...). */
    std::string blame;
    /** Shrunk reproducer statistics. */
    size_t shrunkGates = 0;
    Qubit shrunkQubits = 0;
    /** Corpus entry path, when corpusDir was set. */
    std::string savedTo;
};

/** Aggregate result of a fuzzing run. */
struct FuzzSummary
{
    size_t casesRun = 0;
    size_t casesPassed = 0;
    /** Inputs the compiler legitimately refused (UserError). */
    size_t casesRejected = 0;
    std::vector<FuzzFailure> failures;
    /** Oracles that produced at least one non-skipped verdict. */
    std::vector<OracleId> oraclesExercised;
    double wallSeconds = 0.0;

    bool clean() const { return failures.empty(); }
    bool oracleExercised(OracleId id) const;
    /** Smallest shrunk reproducer across failures (SIZE_MAX = none). */
    size_t smallestFailureGates() const;
};

/**
 * Run the fuzzing loop. Progress and failure reports go to `log`
 * (pass std::cerr from tools; a stringstream from tests).
 */
FuzzSummary runFuzzer(const FuzzOptions &opts, std::ostream &log);

/**
 * Replay every corpus entry under `corpus_dir` through the oracle
 * stack; logs one line per entry. Returns the paths of entries that
 * did NOT replay green (empty = corpus healthy).
 */
std::vector<std::string> replayCorpus(const std::string &corpus_dir,
                                      const OracleOptions &opts,
                                      std::ostream &log);

} // namespace qsyn::check
