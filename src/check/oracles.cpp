#include "check/oracles.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "analysis/rules.hpp"
#include "cache/cache.hpp"
#include "cache/serialize.hpp"
#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/batch.hpp"
#include "core/report.hpp"
#include "obs/obs.hpp"
#include "sim/statevector.hpp"

namespace qsyn::check {

const char *
oracleName(OracleId id)
{
    switch (id) {
      case OracleId::QmddEquivalence: return "qmdd";
      case OracleId::Statevector: return "statevector";
      case OracleId::Legality: return "legality";
      case OracleId::CostSanity: return "cost";
      case OracleId::Determinism: return "determinism";
      case OracleId::CacheConsistency: return "cache";
      case OracleId::LintClean: return "lint";
      case OracleId::RouterDifferential: return "router";
    }
    return "?";
}

bool
OracleReport::allPassed() const
{
    for (const OracleOutcome &o : outcomes) {
        if (!o.passed && !o.skipped)
            return false;
    }
    return true;
}

const OracleOutcome *
OracleReport::firstFailure() const
{
    for (const OracleOutcome &o : outcomes) {
        if (!o.passed && !o.skipped)
            return &o;
    }
    return nullptr;
}

std::string
OracleReport::summary() const
{
    std::ostringstream os;
    for (const OracleOutcome &o : outcomes) {
        os << oracleName(o.id) << ": ";
        if (o.skipped)
            os << "skipped";
        else if (o.passed)
            os << "ok";
        else
            os << "FAIL";
        if (!o.details.empty())
            os << " (" << o.details << ")";
        os << "\n";
    }
    return os.str();
}

OracleOutcome
checkQmddEquivalence(const CompileResult &result, const Device &device,
                     const OracleOptions &opts)
{
    obs::Span span("check.qmdd", "check");
    OracleOutcome out;
    out.id = OracleId::QmddEquivalence;
    if (!result.input.isUnitary()) {
        out.skipped = true;
        out.details = "non-unitary input";
        return out;
    }
    Circuit reference = result.referenceOnDevice(device.numQubits());
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    dd::EquivalenceOptions eopts;
    eopts.ancillaWires = result.ancillas;
    eopts.nodeBudget = opts.qmddNodeBudget;
    dd::Equivalence verdict =
        checker.check(reference, result.optimized, eopts);
    if (verdict == dd::Equivalence::Inconclusive) {
        out.skipped = true;
        out.details = "node budget exhausted";
        return out;
    }
    out.passed = dd::isEquivalent(verdict);
    if (!out.passed)
        out.details = std::string("verdict ") +
                      dd::equivalenceName(verdict);
    return out;
}

namespace {

/** Random product state on the non-ancilla wires: |0...0> prepared by
 *  one random SU(2)-ish rotation per free wire (ancillas stay |0>). */
Circuit
randomProductPrep(Rng &rng, Qubit num_qubits,
                  const std::vector<Qubit> &ancillas)
{
    std::vector<bool> is_ancilla(num_qubits, false);
    for (Qubit a : ancillas)
        is_ancilla[a] = true;
    Circuit prep(num_qubits, "prep");
    for (Qubit q = 0; q < num_qubits; ++q) {
        if (is_ancilla[q])
            continue;
        double theta = (rng.uniform() * 2 - 1) * std::numbers::pi;
        double phi = (rng.uniform() * 2 - 1) * std::numbers::pi;
        prep.add(Gate::ry(q, theta));
        prep.add(Gate::rz(q, phi));
    }
    return prep;
}

} // namespace

OracleOutcome
checkStatevector(const CompileResult &result, const Device &device,
                 const OracleOptions &opts)
{
    obs::Span span("check.statevector", "check");
    OracleOutcome out;
    out.id = OracleId::Statevector;
    Qubit n = device.numQubits();
    if (n > opts.statevectorMaxQubits) {
        out.skipped = true;
        out.details = "register wider than " +
                      std::to_string(opts.statevectorMaxQubits) +
                      " qubits";
        return out;
    }
    if (!result.input.isUnitary() || !result.optimized.isUnitary()) {
        out.skipped = true;
        out.details = "non-unitary circuit";
        return out;
    }
    Circuit reference = result.referenceOnDevice(n);
    Rng rng(opts.stimulusSeed);
    for (size_t s = 0; s < opts.statevectorSamples; ++s) {
        Circuit prep = randomProductPrep(rng, n, result.ancillas);
        sim::StateVector expect(n);
        expect.apply(prep);
        sim::StateVector actual = expect;
        expect.apply(reference);
        actual.apply(result.optimized);
        if (!expect.equalsUpToPhase(actual, 1e-7)) {
            out.passed = false;
            out.details = "state mismatch on stimulus " +
                          std::to_string(s) + " (fidelity " +
                          std::to_string(expect.fidelityWith(actual)) +
                          ")";
            return out;
        }
    }
    out.details = std::to_string(opts.statevectorSamples) +
                  " random product states agreed";
    return out;
}

OracleOutcome
checkLegality(const CompileResult &result, const Device &device)
{
    obs::Span span("check.legality", "check");
    OracleOutcome out;
    out.id = OracleId::Legality;
    for (size_t i = 0; i < result.optimized.size(); ++i) {
        const Gate &g = result.optimized[i];
        if (!device.supportsGate(g)) {
            out.passed = false;
            out.details = "gate " + std::to_string(i) + " (" +
                          g.toString() + ") is not native to " +
                          device.name();
            return out;
        }
    }
    return out;
}

OracleOutcome
checkCostSanity(const CompileResult &result,
                const CompileOptions &options)
{
    obs::Span span("check.cost", "check");
    OracleOutcome out;
    out.id = OracleId::CostSanity;
    opt::CostModel model(options.optimizer.weights);
    const double eps = 1e-9;

    auto mismatch = [&](const std::string &what) {
        out.passed = false;
        out.details = what;
        return out;
    };

    if (result.optimizedM.cost > result.unoptimized.cost + eps)
        return mismatch(
            "optimizer raised the cost: " +
            std::to_string(result.unoptimized.cost) + " -> " +
            std::to_string(result.optimizedM.cost));

    struct StagePair
    {
        const char *name;
        const Circuit *circuit;
        const StageMetrics *reported;
    };
    const StagePair stages[] = {
        {"tech-independent", &result.decomposed, &result.techIndependent},
        {"unoptimized", &result.mapped, &result.unoptimized},
        {"optimized", &result.optimized, &result.optimizedM},
    };
    for (const StagePair &stage : stages) {
        StageMetrics actual = measure(*stage.circuit, model);
        if (actual.gates != stage.reported->gates ||
            actual.tCount != stage.reported->tCount ||
            std::abs(actual.cost - stage.reported->cost) > eps)
            return mismatch(std::string(stage.name) +
                            " report disagrees with its circuit");
    }
    if (options.optimize) {
        if (std::abs(result.optReport.finalCost -
                     result.optimizedM.cost) > eps)
            return mismatch("optimizer finalCost disagrees with the "
                            "optimized circuit");
        if (result.optReport.finalGates != result.optimizedM.gates)
            return mismatch("optimizer finalGates disagrees with the "
                            "optimized circuit");
    }
    return out;
}

OracleOutcome
checkDeterminism(const Circuit &input, const Device &device,
                 const CompileOptions &options,
                 const OracleOptions &opts)
{
    obs::Span span("check.determinism", "check");
    OracleOutcome out;
    out.id = OracleId::Determinism;

    Compiler compiler(device, options);
    std::string baseline = compiler.toQasm(compiler.compile(input));
    for (size_t i = 0; i < opts.determinismRecompiles; ++i) {
        Compiler fresh(device, options);
        std::string again = fresh.toQasm(fresh.compile(input));
        if (again != baseline) {
            out.passed = false;
            out.details = "recompile " + std::to_string(i + 1) +
                          " produced different QASM bytes";
            return out;
        }
    }

    // Batch invariance: the same inputs through the worker pool must
    // emit the same bytes for every worker count — and for both the
    // shared-QMDD-manager mode (the default) and fully private
    // per-item packages.
    std::vector<Circuit> copies = {input, input, input};
    std::string batch_baseline;
    for (size_t jobs : opts.determinismJobs) {
        for (bool share : {true, false}) {
            BatchCompiler batch(device, options);
            batch.setShareManager(share);
            std::vector<BatchItem> items =
                batch.compileCircuits(copies, jobs);
            std::string mode = " (share-manager " +
                               std::string(share ? "on" : "off") + ")";
            std::ostringstream concat;
            bool failed = false;
            for (const BatchItem &item : items) {
                if (!item.ok) {
                    out.passed = false;
                    out.details = "batch item failed under --jobs " +
                                  std::to_string(jobs) + mode + ": " +
                                  item.error;
                    failed = true;
                    break;
                }
                concat << item.qasm;
            }
            if (failed)
                return out;
            if (batch_baseline.empty())
                batch_baseline = concat.str();
            else if (concat.str() != batch_baseline) {
                out.passed = false;
                out.details = "batch QASM differs under --jobs " +
                              std::to_string(jobs) + mode;
                return out;
            }
        }
    }
    return out;
}

OracleOutcome
checkCacheConsistency(const Circuit &input, const Device &device,
                      const CompileOptions &options)
{
    obs::Span span("check.cache", "check");
    OracleOutcome out;
    out.id = OracleId::CacheConsistency;

    cache::CacheConfig config; // memory tier only
    cache::CompileCache compile_cache(config);
    Compiler compiler(device, options);
    size_t computes = 0;
    auto compute = [&] {
        ++computes;
        CachedCompile artifact;
        artifact.result = compiler.compile(input);
        artifact.qasm = compiler.toQasm(artifact.result);
        return artifact;
    };

    auto first =
        compile_cache.getOrCompute(input, device, options, compute);
    auto second =
        compile_cache.getOrCompute(input, device, options, compute);
    if (computes != 1) {
        out.passed = false;
        out.details = "expected exactly one cold compile, saw " +
                      std::to_string(computes);
        return out;
    }
    if (second->qasm != first->qasm) {
        out.passed = false;
        out.details = "cache hit returned different QASM bytes";
        return out;
    }

    // The artifact codec must round-trip exactly, including timings:
    // a disk hit replays these bytes verbatim.
    CachedCompile decoded =
        cache::decodeCachedCompile(cache::encodeCachedCompile(*first));
    if (decoded.qasm != first->qasm) {
        out.passed = false;
        out.details = "codec round-trip changed the QASM bytes";
        return out;
    }
    if (compileReportJson(decoded.result, device) !=
        compileReportJson(first->result, device)) {
        out.passed = false;
        out.details = "codec round-trip changed the report JSON";
        return out;
    }

    // The cached artifact must match a cold recompile byte for byte —
    // wall-clock timings excluded, they are measurements of this run,
    // not cacheable content.
    Compiler cold_compiler(device, options);
    CompileResult cold = cold_compiler.compile(input);
    if (cold_compiler.toQasm(cold) != first->qasm) {
        out.passed = false;
        out.details = "cached QASM differs from a cold recompile";
        return out;
    }
    ReportOptions no_seconds;
    no_seconds.includeSeconds = false;
    if (compileReportJson(cold, device, no_seconds) !=
        compileReportJson(first->result, device, no_seconds)) {
        out.passed = false;
        out.details = "cached report JSON differs from a cold recompile";
        return out;
    }
    return out;
}

OracleOutcome
checkLintClean(const CompileResult &result, const Device &device,
               const CompileOptions &options)
{
    OracleOutcome out;
    out.id = OracleId::LintClean;
    analysis::LintOptions lopts;
    lopts.device = &device;
    lopts.onlyRules = {"QL001", "QL002", "QL006"};
    // A dead-gate-pair finding only indicts the pipeline when the
    // optimizer actually ran (shrunk reproducers may disable it).
    if (options.optimize)
        lopts.onlyRules.push_back("QL004");
    analysis::Diagnostics report =
        analysis::analyzeCircuit(result.optimized, "compiled", lopts);
    if (!report.findings.empty()) {
        out.passed = false;
        std::ostringstream os;
        os << report.findings.size() << " lint finding(s); first: "
           << findingToString(report, report.findings.front());
        out.details = os.str();
    }
    return out;
}

OracleOutcome
checkRouterDifferential(const CompileResult &result, const Device &device,
                        const CompileOptions &options,
                        const OracleOptions &opts)
{
    obs::Span span("check.router", "check");
    OracleOutcome out;
    out.id = OracleId::RouterDifferential;
    if (device.isFullyConnected()) {
        out.skipped = true;
        out.details = "fully connected target";
        return out;
    }
    if (!result.input.isUnitary()) {
        out.skipped = true;
        out.details = "non-unitary input";
        return out;
    }

    Circuit placed =
        result.decomposed.remapped(result.placement, device.numQubits());
    route::RouteOptions ropts = options.routing;
    ropts.router = route::RouterKind::Ctr;
    Circuit by_ctr = route::routeCircuit(placed, device, nullptr, ropts);
    ropts.router = route::RouterKind::Sabre;
    ropts.testOmitSwapBack = false; // the fault is a ctr-only knob
    Circuit by_sabre = route::routeCircuit(placed, device, nullptr, ropts);

    // Both strategies restore the identity layout, so the two routed
    // circuits must agree as full unitaries — no ancilla slack.
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    dd::EquivalenceOptions eopts;
    eopts.nodeBudget = opts.qmddNodeBudget;
    dd::Equivalence verdict = checker.check(by_ctr, by_sabre, eopts);
    if (verdict == dd::Equivalence::Inconclusive) {
        out.skipped = true;
        out.details = "node budget exhausted";
        return out;
    }
    out.passed = dd::isEquivalent(verdict);
    if (!out.passed) {
        std::ostringstream os;
        os << "ctr vs sabre verdict " << dd::equivalenceName(verdict)
           << " (ctr " << by_ctr.size() << "g, sabre "
           << by_sabre.size() << "g)";
        out.details = os.str();
    }
    return out;
}

OracleReport
runAllOracles(const Circuit &input, const Device &device,
              const CompileOptions &options, const OracleOptions &opts)
{
    obs::Span span("check.run_all", "check");
    // The oracle stack re-verifies on its own package; the compiler's
    // inline verification would only duplicate the work (and throw on
    // the very inequivalences the fuzzer wants to observe).
    CompileOptions copts = options;
    copts.verify = VerifyMode::Off;
    Compiler compiler(device, copts);
    CompileResult result = compiler.compile(input);

    OracleReport report;
    report.outcomes.push_back(checkQmddEquivalence(result, device, opts));
    report.outcomes.push_back(checkStatevector(result, device, opts));
    report.outcomes.push_back(checkLegality(result, device));
    report.outcomes.push_back(checkCostSanity(result, copts));
    report.outcomes.push_back(checkLintClean(result, device, copts));
    if (opts.runRouterDifferential)
        report.outcomes.push_back(
            checkRouterDifferential(result, device, copts, opts));
    if (opts.runDeterminism)
        report.outcomes.push_back(
            checkDeterminism(input, device, copts, opts));
    if (opts.runCache)
        report.outcomes.push_back(
            checkCacheConsistency(input, device, copts));
    return report;
}

CaseOutcome
runCase(const Circuit &input, const Device &device,
        const CompileOptions &options, const OracleOptions &opts)
{
    CaseOutcome outcome;
    try {
        outcome.report = runAllOracles(input, device, options, opts);
        outcome.status = outcome.report.allPassed()
                             ? CaseStatus::Ok
                             : CaseStatus::OracleFailed;
    } catch (const UserError &e) {
        outcome.status = CaseStatus::Rejected;
        outcome.error = e.what();
    } catch (const Error &e) {
        outcome.status = CaseStatus::CompileError;
        outcome.error = e.what();
    }
    return outcome;
}

} // namespace qsyn::check
