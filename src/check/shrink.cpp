#include "check/shrink.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "obs/obs.hpp"

namespace qsyn::check {

namespace {

/** Circuit with the gates at [start, start+len) removed. */
Circuit
withoutRange(const Circuit &c, size_t start, size_t len)
{
    Circuit out(c.numQubits(), c.name());
    for (size_t i = 0; i < c.size(); ++i) {
        if (i < start || i >= start + len)
            out.add(c[i]);
    }
    return out;
}

/** Compact the register to the wires the circuit actually touches.
 *  Returns the unchanged circuit when every wire is used. */
Circuit
compactWires(const Circuit &c, Qubit *removed)
{
    std::vector<bool> used(c.numQubits(), false);
    for (const Gate &g : c) {
        for (Qubit q : g.qubits())
            used[q] = true;
    }
    std::vector<Qubit> remap(c.numQubits(), 0);
    Qubit next = 0;
    for (Qubit q = 0; q < c.numQubits(); ++q) {
        if (used[q])
            remap[q] = next++;
    }
    if (removed)
        *removed = static_cast<Qubit>(c.numQubits() - next);
    if (next == c.numQubits() || next == 0)
        return c;
    return c.remapped(remap, next);
}

/** One named flag reset the shrinker may try. `applies` gates the
 *  attempt on the flag still being non-default, so a reset is tried at
 *  most once per fixpoint round. */
struct FlagReset
{
    const char *name;
    bool (*applies)(const CompileOptions &);
    void (*apply)(CompileOptions &);
};

const FlagReset kFlagResets[] = {
    {"router",
     [](const CompileOptions &o) {
         return o.routing.router != route::RouterKind::Ctr;
     },
     [](CompileOptions &o) { o.routing.router = route::RouterKind::Ctr; }},
    {"meet-in-middle",
     [](const CompileOptions &o) { return o.routing.meetInMiddle; },
     [](CompileOptions &o) { o.routing.meetInMiddle = false; }},
    {"dynamic-layout",
     [](const CompileOptions &o) { return o.routing.dynamicLayout; },
     [](CompileOptions &o) { o.routing.dynamicLayout = false; }},
    {"fidelity-aware",
     [](const CompileOptions &o) { return o.routing.fidelityAware; },
     [](CompileOptions &o) { o.routing.fidelityAware = false; }},
    {"test-omit-swap-back",
     [](const CompileOptions &o) { return o.routing.testOmitSwapBack; },
     [](CompileOptions &o) { o.routing.testOmitSwapBack = false; }},
    {"placement",
     [](const CompileOptions &o) {
         return o.placement != route::PlacementStrategy::Identity;
     },
     [](CompileOptions &o) {
         o.placement = route::PlacementStrategy::Identity;
     }},
    {"mcx-strategy",
     [](const CompileOptions &o) {
         return o.mcxStrategy != decompose::McxStrategy::Auto;
     },
     [](CompileOptions &o) {
         o.mcxStrategy = decompose::McxStrategy::Auto;
     }},
    {"phase-poly",
     [](const CompileOptions &o) {
         return o.optimizer.enablePhasePolynomial;
     },
     [](CompileOptions &o) {
         o.optimizer.enablePhasePolynomial = false;
     }},
    {"ti-optimize",
     [](const CompileOptions &o) { return o.optimizeTechIndependent; },
     [](CompileOptions &o) { o.optimizeTechIndependent = false; }},
    {"optimize", [](const CompileOptions &o) { return o.optimize; },
     [](CompileOptions &o) { o.optimize = false; }},
};

} // namespace

ShrinkResult
shrinkFailure(const Circuit &input, const CompileOptions &options,
              const StillFails &still_fails, size_t max_evaluations)
{
    obs::Span span("check.shrink", "check");
    ShrinkResult res;
    res.circuit = input;
    res.options = options;

    auto fails = [&](const Circuit &c, const CompileOptions &o) {
        if (res.evaluations >= max_evaluations)
            return false; // budget out: stop accepting reductions
        ++res.evaluations;
        return still_fails(c, o);
    };

    bool progress = true;
    while (progress && res.evaluations < max_evaluations) {
        progress = false;

        // 1. Gates: ddmin-style chunk removal, halving granularity.
        size_t chunk = std::max<size_t>(res.circuit.size() / 2, 1);
        while (chunk >= 1 && res.circuit.size() > 0) {
            bool removed_any = false;
            size_t start = 0;
            while (start < res.circuit.size()) {
                size_t len =
                    std::min(chunk, res.circuit.size() - start);
                Circuit candidate =
                    withoutRange(res.circuit, start, len);
                if (fails(candidate, res.options)) {
                    res.gatesRemoved += len;
                    res.circuit = std::move(candidate);
                    removed_any = true;
                    progress = true;
                    // same start now addresses the next chunk
                } else {
                    start += len;
                }
            }
            if (chunk == 1 && !removed_any)
                break;
            if (!removed_any)
                chunk /= 2;
        }

        // 2. Qubits: drop wires no remaining gate touches.
        Qubit dropped = 0;
        Circuit compacted = compactWires(res.circuit, &dropped);
        if (dropped > 0 && fails(compacted, res.options)) {
            res.circuit = std::move(compacted);
            res.qubitsRemoved =
                static_cast<Qubit>(res.qubitsRemoved + dropped);
            progress = true;
        }

        // 3. Flags: reset every option whose removal keeps it failing.
        for (const FlagReset &reset : kFlagResets) {
            if (!reset.applies(res.options))
                continue;
            CompileOptions candidate = res.options;
            reset.apply(candidate);
            if (fails(res.circuit, candidate)) {
                res.options = candidate;
                ++res.flagsReset;
                progress = true;
            }
        }
    }
    span.arg("evaluations", res.evaluations);
    span.arg("final_gates", res.circuit.size());
    return res;
}

ShrinkResult
shrinkCase(const Circuit &input, const Device &device,
           const CompileOptions &options,
           const OracleOptions &oracle_opts, size_t max_evaluations)
{
    return shrinkFailure(
        input, options,
        [&](const Circuit &c, const CompileOptions &o) {
            return runCase(c, device, o, oracle_opts).failed();
        },
        max_evaluations);
}

namespace {

/** True when `b` provably differs from `a` under the budget; an
 *  inconclusive verdict counts as "not broken" (cannot blame). */
bool
provablyBroken(const Circuit &a, const Circuit &b,
               const std::vector<Qubit> &ancillas, size_t budget)
{
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    dd::EquivalenceOptions eopts;
    eopts.ancillaWires = ancillas;
    eopts.nodeBudget = budget;
    dd::Equivalence v = checker.check(a, b, eopts);
    return v == dd::Equivalence::NotEquivalent;
}

/** Name the first optimizer pass snapshot that broke equivalence. */
std::string
blameOptimizerPass(const Circuit &before_opt,
                   const opt::OptimizerOptions &oopts, size_t budget)
{
    opt::OptimizerOptions capture = oopts;
    capture.capturePassCircuits = true;
    opt::OptimizeReport report;
    opt::optimizeCircuit(before_opt, capture, &report);
    for (const opt::PassSnapshot &snap : report.snapshots) {
        if (provablyBroken(snap.before, snap.after, {}, budget))
            return snap.pass;
    }
    return "";
}

} // namespace

std::string
blameFirstBrokenStage(const Circuit &input, const Device &device,
                      const CompileOptions &options, size_t node_budget)
{
    obs::Span span("check.blame", "check");
    CompileOptions copts = options;
    copts.verify = VerifyMode::Off;
    Compiler compiler(device, copts);
    CompileResult result = compiler.compile(input);

    // Decompose (+ technology-independent optimization): the lowered
    // circuit may have grown clean ancillas past the input register.
    {
        std::vector<Qubit> grown;
        for (Qubit q = input.numQubits();
             q < result.decomposed.numQubits(); ++q)
            grown.push_back(q);
        if (provablyBroken(input, result.decomposed, grown,
                           node_budget)) {
            // Distinguish raw lowering from the TI optimizer rerun.
            decompose::DecomposeOptions dopts;
            dopts.mcxStrategy = copts.mcxStrategy;
            dopts.lowerToffoli = true;
            dopts.maxQubits = device.numQubits();
            Circuit lowered =
                decompose::decomposeToPrimitives(input, dopts).circuit;
            std::vector<Qubit> raw_grown;
            for (Qubit q = input.numQubits(); q < lowered.numQubits();
                 ++q)
                raw_grown.push_back(q);
            if (provablyBroken(input, lowered, raw_grown, node_budget))
                return "decompose";
            if (copts.optimize && copts.optimizeTechIndependent) {
                opt::OptimizerOptions ti = copts.optimizer;
                ti.device = nullptr;
                std::string pass =
                    blameOptimizerPass(lowered, ti, node_budget);
                if (!pass.empty())
                    return "ti-optimize:" + pass;
            }
            return "decompose";
        }
    }

    // Route: the mapped circuit against the placed lowered circuit.
    Circuit placed =
        result.decomposed.remapped(result.placement, device.numQubits());
    if (provablyBroken(placed, result.mapped, result.ancillas,
                       node_budget))
        return "route";

    // Optimize: per-pass snapshots on the device-constrained rerun.
    if (copts.optimize &&
        provablyBroken(result.mapped, result.optimized, result.ancillas,
                       node_budget)) {
        opt::OptimizerOptions oopts = copts.optimizer;
        oopts.device = &device;
        std::string pass =
            blameOptimizerPass(result.mapped, oopts, node_budget);
        return pass.empty() ? "optimize" : "optimize:" + pass;
    }
    return "none";
}

} // namespace qsyn::check
