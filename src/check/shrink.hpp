/**
 * @file
 * Failure shrinking: delta-debugging a failing fuzz case down to a
 * minimal reproducer. Reduction proceeds in the order that shrinks
 * fastest in practice — gates (ddmin-style chunk removal), then qubits
 * (drop untouched wires and compact the register), then compile flags
 * (reset every non-default option whose removal keeps the case
 * failing) — and repeats until a fixed point.
 */

#pragma once

#include <functional>
#include <string>

#include "check/oracles.hpp"

namespace qsyn::check {

/**
 * The reduction predicate: true when (circuit, options) still exhibits
 * a failure. Shrinking preserves predicate truth, so the minimized
 * case fails exactly like (well, at least like) the original.
 */
using StillFails =
    std::function<bool(const Circuit &, const CompileOptions &)>;

/** A minimized failing case. */
struct ShrinkResult
{
    Circuit circuit{0};
    CompileOptions options;
    /** Predicate evaluations spent (each is a full compile + oracles). */
    size_t evaluations = 0;
    /** Gates removed / qubits removed / flags reset, for reporting. */
    size_t gatesRemoved = 0;
    Qubit qubitsRemoved = 0;
    size_t flagsReset = 0;
};

/**
 * Minimize a failing (circuit, options) pair under `still_fails`.
 * `still_fails(input, options)` must be true on entry (the caller just
 * observed the failure); the result is 1-minimal with respect to
 * single-gate removal and the flag list.
 */
ShrinkResult shrinkFailure(const Circuit &input,
                           const CompileOptions &options,
                           const StillFails &still_fails,
                           size_t max_evaluations = 2000);

/**
 * Convenience wrapper: shrink against the full oracle stack on
 * `device` (predicate = runCase(...).failed()).
 */
ShrinkResult shrinkCase(const Circuit &input, const Device &device,
                        const CompileOptions &options,
                        const OracleOptions &oracle_opts = {},
                        size_t max_evaluations = 2000);

/**
 * Blame attribution for a failing QMDD/statevector case: re-checks the
 * staged circuits inside a fresh compile (decompose -> route ->
 * optimize, the optimizer re-run with per-pass snapshots) and names
 * the first stage — and, inside the optimizer, the first pass — whose
 * output stops being equivalent to its input. Returns e.g. "route",
 * "optimize:cancellation", or "none" when every stage checks out.
 */
std::string blameFirstBrokenStage(const Circuit &input,
                                  const Device &device,
                                  const CompileOptions &options,
                                  size_t node_budget = 1u << 20);

} // namespace qsyn::check
