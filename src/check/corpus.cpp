#include "check/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/options.hpp"
#include "common/errors.hpp"
#include "common/strings.hpp"
#include "device/loader.hpp"
#include "frontend/loader.hpp"
#include "frontend/qasm_writer.hpp"

namespace fs = std::filesystem;

namespace qsyn::check {

std::vector<std::string>
compileOptionsToFlags(const CompileOptions &options)
{
    const CompileOptions defaults;
    std::vector<std::string> flags;
    auto push = [&](const std::string &flag) { flags.push_back(flag); };

    if (options.mcxStrategy != defaults.mcxStrategy) {
        push("--mcx");
        switch (options.mcxStrategy) {
          case decompose::McxStrategy::Auto: push("auto"); break;
          case decompose::McxStrategy::CleanVChain: push("clean"); break;
          case decompose::McxStrategy::DirtyVChain: push("dirty"); break;
          case decompose::McxStrategy::Split: push("split"); break;
          case decompose::McxStrategy::Roots: push("roots"); break;
        }
    }
    if (options.placement == route::PlacementStrategy::Greedy) {
        push("--placement");
        push("greedy");
    }
    if (options.routing.router != defaults.routing.router) {
        push("--router");
        push(route::routerName(options.routing.router));
    }
    if (options.routing.meetInMiddle)
        push("--meet-in-middle");
    if (options.routing.dynamicLayout)
        push("--dynamic-layout");
    if (options.routing.fidelityAware)
        push("--fidelity-aware");
    if (options.routing.testOmitSwapBack)
        push("--test-omit-swap-back");
    if (!options.optimize)
        push("--no-optimize");
    if (!options.optimizeTechIndependent)
        push("--no-ti-optimize");
    if (options.optimizer.enablePhasePolynomial)
        push("--phase-poly");

    const opt::CostWeights &w = options.optimizer.weights;
    const opt::CostWeights &dw = defaults.optimizer.weights;
    auto pushWeight = [&](const char *flag, double value) {
        std::ostringstream os;
        os << value;
        push(flag);
        push(os.str());
    };
    if (w.tWeight != dw.tWeight)
        pushWeight("--weight-t", w.tWeight);
    if (w.cnotWeight != dw.cnotWeight)
        pushWeight("--weight-cnot", w.cnotWeight);
    if (w.gateWeight != dw.gateWeight)
        pushWeight("--weight-gate", w.gateWeight);

    if (options.verify == VerifyMode::Off)
        push("--no-verify");
    else if (options.verify == VerifyMode::Miter)
        push("--verify-miter");
    return flags;
}

CompileOptions
compileOptionsFromFlags(const std::vector<std::string> &tokens)
{
    // Reuse the real CLI grammar; the dummy input satisfies its
    // "no input file" validation and is otherwise ignored.
    std::vector<std::string> args = tokens;
    args.push_back("corpus-entry.qasm");
    return cli::parseCliArguments(args).compile;
}

namespace {

std::string
flagsFileText(const Reproducer &repro)
{
    std::ostringstream os;
    for (const std::string &note : repro.notes)
        os << "# " << note << "\n";
    for (const std::string &flag :
         compileOptionsToFlags(repro.options))
        os << flag << "\n";
    return os.str();
}

void
writeFileOrThrow(const fs::path &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        throw UserError("cannot write '" + path.string() + "'");
    out << content;
}

} // namespace

std::string
saveReproducer(const std::string &corpus_dir, const Reproducer &repro)
{
    fs::path root(corpus_dir);
    std::error_code ec;
    fs::create_directories(root, ec);
    if (ec)
        throw UserError("cannot create corpus directory '" +
                        corpus_dir + "': " + ec.message());

    std::string name = repro.name;
    if (name.empty())
        name = "repro-" +
               std::to_string(listCorpus(corpus_dir).size() + 1);
    fs::path entry = root / name;
    fs::create_directories(entry, ec);
    if (ec)
        throw UserError("cannot create corpus entry '" +
                        entry.string() + "': " + ec.message());

    frontend::QasmWriterOptions wopts;
    wopts.headerComment =
        "qfuzz reproducer; replay: qsync circuit.qasm "
        "--device-file device.txt $(grep -v '^#' flags.txt)";
    writeFileOrThrow(entry / "circuit.qasm",
                     frontend::writeQasm(repro.circuit, wopts));
    writeFileOrThrow(entry / "device.txt", deviceToText(repro.device));
    writeFileOrThrow(entry / "flags.txt", flagsFileText(repro));
    return entry.string();
}

Reproducer
loadReproducer(const std::string &entry_dir)
{
    fs::path entry(entry_dir);
    Reproducer repro;
    repro.name = entry.filename().string();
    repro.circuit =
        frontend::loadCircuitFile((entry / "circuit.qasm").string());
    repro.device = loadDeviceFile((entry / "device.txt").string());

    std::ifstream flags(entry / "flags.txt");
    if (!flags)
        throw UserError("corpus entry '" + entry_dir +
                        "' has no flags.txt");
    std::vector<std::string> tokens;
    std::string line;
    while (std::getline(flags, line)) {
        std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        if (trimmed[0] == '#') {
            repro.notes.push_back(trim(trimmed.substr(1)));
            continue;
        }
        // A line may hold a flag and its value ("--mcx clean").
        std::istringstream words(trimmed);
        std::string word;
        while (words >> word)
            tokens.push_back(word);
    }
    repro.options = compileOptionsFromFlags(tokens);
    return repro;
}

std::vector<std::string>
listCorpus(const std::string &corpus_dir)
{
    std::vector<std::string> entries;
    std::error_code ec;
    fs::directory_iterator it(corpus_dir, ec);
    if (ec)
        return entries;
    for (const fs::directory_entry &e : it) {
        if (e.is_directory() &&
            fs::exists(e.path() / "circuit.qasm"))
            entries.push_back(e.path().string());
    }
    std::sort(entries.begin(), entries.end());
    return entries;
}

CaseOutcome
replayReproducer(const Reproducer &repro, const OracleOptions &opts)
{
    return runCase(repro.circuit, repro.device, repro.options, opts);
}

} // namespace qsyn::check
