#include "check/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "device/registry.hpp"
#include "ir/random_circuit.hpp"
#include "obs/obs.hpp"

namespace qsyn::check {

bool
FuzzSummary::oracleExercised(OracleId id) const
{
    return std::find(oraclesExercised.begin(), oraclesExercised.end(),
                     id) != oraclesExercised.end();
}

size_t
FuzzSummary::smallestFailureGates() const
{
    size_t best = static_cast<size_t>(-1);
    for (const FuzzFailure &f : failures)
        best = std::min(best, f.shrunkGates);
    return best;
}

namespace {

/** splitmix64 step, for deriving per-case seeds from the master. */
std::uint64_t
deriveSeed(std::uint64_t master, std::uint64_t index)
{
    std::uint64_t z = master + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Random connected device: a random spanning tree over `n` qubits
 * (guaranteeing connectivity), each edge in a random direction, plus a
 * few extra random couplings. Mirrors the sparse, directed style of
 * the paper's Table 2 machines.
 */
Device
randomDevice(Rng &rng, Qubit n, std::uint64_t case_seed)
{
    CouplingMap map(n);
    for (Qubit q = 1; q < n; ++q) {
        Qubit other = static_cast<Qubit>(rng.below(q));
        if (rng.chance(0.5))
            map.addEdge(other, q);
        else
            map.addEdge(q, other);
    }
    size_t extras = rng.below(n);
    for (size_t e = 0; e < extras; ++e) {
        Qubit a = static_cast<Qubit>(rng.below(n));
        Qubit b = static_cast<Qubit>(rng.below(n));
        if (a != b)
            map.addEdge(a, b);
    }
    std::ostringstream name;
    name << "fuzz_dev_" << std::hex << case_seed;
    return Device(name.str(), n, map);
}

/** One generated fuzz case. */
struct FuzzCase
{
    Circuit circuit{0};
    Device device = Device::simulator(1);
    CompileOptions options;
    RandomCircuitOptions gen;
};

FuzzCase
generateCase(Rng &rng, const FuzzOptions &opts, std::uint64_t case_seed)
{
    FuzzCase fc;

    if (rng.chance(opts.randomDeviceFraction)) {
        Qubit lo = 3;
        Qubit hi = std::max<Qubit>(
            lo, std::min<Qubit>(8, opts.maxQubits + 2));
        Qubit n = static_cast<Qubit>(lo + rng.below(hi - lo + 1));
        fc.device = randomDevice(rng, n, case_seed);
    } else {
        // Mostly the sparse 5-qubit machines (every oracle applies);
        // occasionally the 14-qubit Melbourne, where the statevector
        // oracle steps aside and the rest carry the case.
        double pick = rng.uniform();
        if (pick < 0.45)
            fc.device = makeIbmqx4();
        else if (pick < 0.9)
            fc.device = makeIbmqx2();
        else
            fc.device = makeIbmq16();
    }

    Qubit width_cap =
        std::min<Qubit>(fc.device.numQubits(), opts.maxQubits);
    fc.gen.numQubits =
        static_cast<Qubit>(2 + rng.below(std::max<Qubit>(width_cap, 3) - 1));
    fc.gen.numGates = 1 + rng.below(opts.maxGates);
    fc.gen.cnotFraction = 0.3 + 0.4 * rng.uniform();
    fc.gen.maxControls = fc.gen.numQubits >= 3 && rng.chance(0.4) ? 2 : 1;
    fc.gen.allowRotations = rng.chance(0.3);
    fc.gen.gateSet = static_cast<RandomGateSet>(rng.below(3));
    fc.gen.seed = case_seed;
    if (opts.injectSwapBackFault &&
        fc.gen.gateSet == RandomGateSet::CliffordT && rng.chance(0.5)) {
        // Bias the fault runs toward CNOT-heavy inputs: the planted
        // bug only fires when the router actually reroutes.
        fc.gen.gateSet = RandomGateSet::CnotOnly;
    }
    fc.circuit = randomCircuit(fc.gen);

    fc.options.placement = rng.chance(0.5)
                               ? route::PlacementStrategy::Greedy
                               : route::PlacementStrategy::Identity;
    // Skip the router draw on fault runs (it is pinned below anyway):
    // the fault sweep's case stream must stay CNOT-heavy enough for
    // the planted bug to fire.
    if (!opts.injectSwapBackFault) {
        fc.options.routing.router = rng.chance(0.35)
                                        ? route::RouterKind::Sabre
                                        : route::RouterKind::Ctr;
    }
    fc.options.routing.meetInMiddle = rng.chance(0.25);
    fc.options.routing.dynamicLayout = rng.chance(0.25);
    fc.options.routing.fidelityAware = rng.chance(0.15);
    fc.options.optimizer.enablePhasePolynomial = rng.chance(0.25);
    fc.options.optimizeTechIndependent = rng.chance(0.85);
    if (rng.chance(0.2)) {
        const decompose::McxStrategy strategies[] = {
            decompose::McxStrategy::CleanVChain,
            decompose::McxStrategy::DirtyVChain,
            decompose::McxStrategy::Split,
            decompose::McxStrategy::Roots,
        };
        fc.options.mcxStrategy = strategies[rng.below(4)];
    }
    if (opts.injectSwapBackFault) {
        fc.options.routing.testOmitSwapBack = true;
        // The planted fault lives in CTR's swap-back half; the router
        // stays at its Ctr default so the smoke gate always has the
        // bug to catch (the sabre leg of the router differential
        // oracle clears the fault flag and catches it from the other
        // side).
    }
    return fc;
}

std::string
describeCase(size_t iteration, std::uint64_t case_seed,
             const FuzzCase &fc)
{
    std::ostringstream os;
    os << "case " << iteration << " seed 0x" << std::hex << case_seed
       << std::dec << ": " << randomGateSetName(fc.gen.gateSet) << " "
       << fc.gen.numQubits << "q/" << fc.circuit.size() << "g on "
       << fc.device.name() << " (" << fc.device.numQubits() << "q)";
    return os.str();
}

} // namespace

FuzzSummary
runFuzzer(const FuzzOptions &opts, std::ostream &log)
{
    obs::Span span("check.fuzz", "check");
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    auto elapsed = [&]() {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    FuzzSummary summary;
    auto noteOracles = [&](const OracleReport &report) {
        for (const OracleOutcome &o : report.outcomes) {
            if (!o.skipped && !summary.oracleExercised(o.id))
                summary.oraclesExercised.push_back(o.id);
        }
    };

    for (size_t i = 0;; ++i) {
        if (opts.iterations > 0 && i >= opts.iterations)
            break;
        if (opts.timeBudgetSeconds > 0 &&
            elapsed() >= opts.timeBudgetSeconds) {
            log << "[qfuzz] time budget reached after " << i
                << " case(s)\n";
            break;
        }
        std::uint64_t case_seed = deriveSeed(opts.seed, i);
        Rng rng(case_seed);
        FuzzCase fc = generateCase(rng, opts, case_seed);
        ++summary.casesRun;

        CaseOutcome outcome =
            runCase(fc.circuit, fc.device, fc.options, opts.oracle);
        noteOracles(outcome.report);

        if (outcome.status == CaseStatus::Ok) {
            ++summary.casesPassed;
            if (opts.verbose)
                log << "[qfuzz] " << describeCase(i, case_seed, fc)
                    << " -> ok\n";
            continue;
        }
        if (outcome.status == CaseStatus::Rejected) {
            ++summary.casesRejected;
            if (opts.verbose)
                log << "[qfuzz] " << describeCase(i, case_seed, fc)
                    << " -> rejected (" << outcome.error << ")\n";
            continue;
        }

        FuzzFailure failure;
        failure.iteration = i;
        failure.caseSeed = case_seed;
        if (const OracleOutcome *first = outcome.report.firstFailure()) {
            failure.oracle = oracleName(first->id);
            failure.details = first->details;
        } else {
            failure.oracle = "compile-error";
            failure.details = outcome.error;
        }
        log << "[qfuzz] FAILURE " << describeCase(i, case_seed, fc)
            << "\n[qfuzz]   oracle: " << failure.oracle << " — "
            << failure.details << "\n";

        log << "[qfuzz]   shrinking (budget " << opts.shrinkBudget
            << " evaluations)...\n";
        ShrinkResult shrunk =
            shrinkCase(fc.circuit, fc.device, fc.options, opts.oracle,
                       opts.shrinkBudget);
        failure.shrunkGates = shrunk.circuit.size();
        failure.shrunkQubits = shrunk.circuit.numQubits();
        log << "[qfuzz]   shrunk to " << failure.shrunkGates
            << " gate(s) on " << static_cast<int>(failure.shrunkQubits)
            << " qubit(s) (" << shrunk.evaluations << " evaluations, "
            << shrunk.flagsReset << " flag(s) reset)\n";

        if (outcome.status == CaseStatus::OracleFailed) {
            try {
                failure.blame = blameFirstBrokenStage(
                    shrunk.circuit, fc.device, shrunk.options);
            } catch (const Error &e) {
                failure.blame = std::string("blame failed: ") + e.what();
            }
            log << "[qfuzz]   blame: " << failure.blame << "\n";
        }

        if (!opts.corpusDir.empty()) {
            Reproducer repro;
            std::ostringstream name;
            name << failure.oracle << "-s" << std::hex << case_seed;
            repro.name = name.str();
            repro.circuit = shrunk.circuit;
            repro.device = fc.device;
            repro.options = shrunk.options;
            repro.notes.push_back("oracle: " + failure.oracle);
            repro.notes.push_back("detail: " + failure.details);
            if (!failure.blame.empty())
                repro.notes.push_back("blame: " + failure.blame);
            std::ostringstream seed_note;
            seed_note << "fuzz seed: master 0x" << std::hex << opts.seed
                      << " case 0x" << case_seed;
            repro.notes.push_back(seed_note.str());
            failure.savedTo = saveReproducer(opts.corpusDir, repro);
            log << "[qfuzz]   saved " << failure.savedTo << "\n";
        }
        summary.failures.push_back(std::move(failure));
    }

    summary.wallSeconds = elapsed();
    log << "[qfuzz] " << summary.casesRun << " case(s): "
        << summary.casesPassed << " ok, " << summary.casesRejected
        << " rejected, " << summary.failures.size() << " failure(s) in "
        << summary.wallSeconds << " s\n";
    std::ostringstream oracles;
    for (OracleId id : summary.oraclesExercised)
        oracles << " " << oracleName(id);
    log << "[qfuzz] oracles exercised:" << oracles.str() << "\n";
    return summary;
}

std::vector<std::string>
replayCorpus(const std::string &corpus_dir, const OracleOptions &opts,
             std::ostream &log)
{
    std::vector<std::string> failing;
    std::vector<std::string> entries = listCorpus(corpus_dir);
    log << "[qfuzz] replaying " << entries.size() << " corpus entr"
        << (entries.size() == 1 ? "y" : "ies") << " from "
        << corpus_dir << "\n";
    for (const std::string &entry : entries) {
        std::string verdict;
        try {
            Reproducer repro = loadReproducer(entry);
            CaseOutcome outcome = replayReproducer(repro, opts);
            if (outcome.status == CaseStatus::Ok) {
                verdict = "ok";
            } else if (outcome.status == CaseStatus::Rejected) {
                verdict = "rejected: " + outcome.error;
                failing.push_back(entry);
            } else if (const OracleOutcome *first =
                           outcome.report.firstFailure()) {
                verdict = std::string("FAIL ") + oracleName(first->id) +
                          " — " + first->details;
                failing.push_back(entry);
            } else {
                verdict = "FAIL " + outcome.error;
                failing.push_back(entry);
            }
        } catch (const Error &e) {
            verdict = std::string("unloadable: ") + e.what();
            failing.push_back(entry);
        }
        log << "[qfuzz]   " << entry << ": " << verdict << "\n";
    }
    return failing;
}

} // namespace qsyn::check
