/**
 * @file
 * Pluggable correctness oracles over a CompileResult — the reusable
 * heart of the differential-testing subsystem. Each oracle checks one
 * property the paper's pipeline promises:
 *
 *   qmdd         — input and output represent the same unitary
 *                  (QMDD canonical-form equivalence, ancillas |0>);
 *   statevector  — same claim, cross-checked on random product states
 *                  with the dense simulator (<= 10-qubit targets), an
 *                  oracle with an independent failure mode;
 *   legality     — every emitted gate is native to the target Device:
 *                  basis-library membership and correctly oriented
 *                  coupling edges for every CNOT;
 *   cost         — the optimizer never raised the Eqn. 2 cost and all
 *                  reported stage metrics match the actual circuits;
 *   determinism  — byte-identical QASM across repeated compiles and
 *                  across batch worker counts;
 *   cache        — a compile served from the compile cache is
 *                  byte-identical (QASM and report JSON) to a cold
 *                  recompile, and the artifact codec round-trips
 *                  exactly;
 *   lint         — the static analyzer finds nothing wrong with the
 *                  emitted circuit: no non-native gates, no coupling
 *                  violations, and (when the optimizer ran) no
 *                  removable inverse pair the optimizer missed;
 *   router       — the ctr and sabre routing strategies produce
 *                  QMDD-equivalent circuits from the same placed
 *                  input (both restore the identity layout, so their
 *                  unitaries must agree exactly).
 *
 * Oracles are pure observers: they never mutate the result and each
 * builds its own QMDD package, so they compose with any compile the
 * fuzzer, the corpus replayer, or a unit test performs.
 */

#pragma once

#include <string>
#include <vector>

#include "core/compiler.hpp"

namespace qsyn::check {

/** Identity of one oracle in the stack. */
enum class OracleId
{
    QmddEquivalence,
    Statevector,
    Legality,
    CostSanity,
    Determinism,
    CacheConsistency,
    LintClean,
    RouterDifferential
};

/** Stable short name ("qmdd", "statevector", "legality", "cost",
 *  "determinism", "cache", "lint", "router"). */
const char *oracleName(OracleId id);

/** Tuning knobs shared by the oracle stack. */
struct OracleOptions
{
    /** Statevector cross-check cap: device registers wider than this
     *  skip the dense oracle (2^n amplitudes). */
    Qubit statevectorMaxQubits = 10;
    /** Random product states pushed through both circuits. */
    size_t statevectorSamples = 4;
    /** Seed for the oracle's random stimuli. */
    std::uint64_t stimulusSeed = 0x5eed;
    /** Node budget for the QMDD oracle (0 = unlimited). Exhaustion
     *  yields a skipped outcome, not a failure. */
    size_t qmddNodeBudget = 1u << 20;
    /** Extra sequential recompiles the determinism oracle performs. */
    size_t determinismRecompiles = 1;
    /** Batch worker counts that must produce identical bytes (each is
     *  run with the shared QMDD manager both on and off). */
    std::vector<size_t> determinismJobs = {1, 4, 8};
    /** Run the (recompiling, comparatively expensive) determinism
     *  oracle as part of runAllOracles. */
    bool runDeterminism = true;
    /** Run the (also recompiling) cache-consistency oracle as part of
     *  runAllOracles. */
    bool runCache = true;
    /** Run the ctr-vs-sabre routing differential as part of
     *  runAllOracles. */
    bool runRouterDifferential = true;
};

/** Verdict of one oracle on one compile. */
struct OracleOutcome
{
    OracleId id = OracleId::QmddEquivalence;
    bool passed = true;
    /** True when the oracle could not apply (too wide, budget out);
     *  skipped outcomes never fail. */
    bool skipped = false;
    /** Human-readable evidence (counterexample, mismatching numbers). */
    std::string details;
};

/** All oracle verdicts for one compile. */
struct OracleReport
{
    std::vector<OracleOutcome> outcomes;

    bool allPassed() const;
    /** First failing outcome, or null when green. */
    const OracleOutcome *firstFailure() const;
    /** One line per oracle: "qmdd: ok", "legality: FAIL (...)". */
    std::string summary() const;
};

/** @name Individual oracles. */
/// @{
OracleOutcome checkQmddEquivalence(const CompileResult &result,
                                   const Device &device,
                                   const OracleOptions &opts = {});
OracleOutcome checkStatevector(const CompileResult &result,
                               const Device &device,
                               const OracleOptions &opts = {});
OracleOutcome checkLegality(const CompileResult &result,
                            const Device &device);
OracleOutcome checkCostSanity(const CompileResult &result,
                              const CompileOptions &options);
OracleOutcome checkDeterminism(const Circuit &input, const Device &device,
                               const CompileOptions &options,
                               const OracleOptions &opts = {});
OracleOutcome checkCacheConsistency(const Circuit &input,
                                    const Device &device,
                                    const CompileOptions &options);
/**
 * The compiled circuit must be qlint-clean for the legality,
 * connectivity, and capacity rules (QL001/QL002/QL006); when
 * `options.optimize` is on, additionally for dead-gate pairs (QL004) —
 * an unbounded-horizon finding there means the optimizer left
 * removable gates behind. Dead-qubit and ancilla rules are exempt:
 * mapped circuits legitimately span the whole device register.
 */
OracleOutcome checkLintClean(const CompileResult &result,
                             const Device &device,
                             const CompileOptions &options);
/**
 * Route the placed circuit once with each strategy (ctr and sabre,
 * inheriting every other routing option) and require the two outputs
 * to be QMDD-equivalent as full unitaries. Skipped on fully connected
 * targets (routing is the identity there) and non-unitary inputs.
 * Catches any strategy whose layout bookkeeping or restoration
 * epilogue silently changes the computation — including the planted
 * `--test-omit-swap-back` fault, which breaks ctr but not sabre.
 */
OracleOutcome checkRouterDifferential(const CompileResult &result,
                                      const Device &device,
                                      const CompileOptions &options,
                                      const OracleOptions &opts = {});
/// @}

/**
 * Compile `input` for `device` (verification forced Off — the oracles
 * re-verify themselves) and run the full oracle stack on the result.
 * Compile-time exceptions propagate; see runCase for a throw-absorbing
 * wrapper.
 */
OracleReport runAllOracles(const Circuit &input, const Device &device,
                           const CompileOptions &options,
                           const OracleOptions &opts = {});

/** How one fuzz/replay case ended. */
enum class CaseStatus
{
    Ok,           ///< compiled and every oracle passed
    OracleFailed, ///< compiled but at least one oracle failed
    Rejected,     ///< compiler refused the input (UserError) — not a bug
    CompileError  ///< internal error / verifier exception — a bug
};

/** Outcome of runCase: status + the oracle report when one exists. */
struct CaseOutcome
{
    CaseStatus status = CaseStatus::Ok;
    OracleReport report;
    std::string error; ///< exception text for Rejected / CompileError

    /** True for the two bug-indicating statuses. */
    bool
    failed() const
    {
        return status == CaseStatus::OracleFailed ||
               status == CaseStatus::CompileError;
    }
};

/**
 * runAllOracles with every exception folded into the outcome: the
 * fuzzer's and shrinker's single evaluation point.
 */
CaseOutcome runCase(const Circuit &input, const Device &device,
                    const CompileOptions &options,
                    const OracleOptions &opts = {});

} // namespace qsyn::check
