/**
 * @file
 * The on-disk reproducer corpus. Every failure qfuzz shrinks is saved
 * as one directory under tests/corpus/:
 *
 *     <entry>/circuit.qasm   minimized input circuit (OpenQASM 2.0)
 *     <entry>/device.txt     target coupling map (device loader format)
 *     <entry>/flags.txt      qsync-style compile flags, one per line;
 *                            '#' lines carry metadata (failed oracle,
 *                            fuzz seed, blame) and are ignored on load
 *
 * The same three files a human would need to replay the bug by hand:
 *
 *     qsync circuit.qasm --device-file device.txt <flags...>
 *
 * Committed entries are replayed green by ctest label `fuzz-corpus`.
 */

#pragma once

#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "device/device.hpp"

namespace qsyn::check {

/** One corpus entry, in memory. */
struct Reproducer
{
    /** Directory basename; empty = let saveReproducer invent one. */
    std::string name;
    Circuit circuit{0};
    Device device = Device::simulator(1);
    CompileOptions options;
    /** Metadata lines written as '#' comments into flags.txt. */
    std::vector<std::string> notes;
};

/**
 * Serialize the non-default fields of `options` as qsync command-line
 * tokens ("--mcx clean", "--meet-in-middle", ...). The inverse of
 * compileOptionsFromFlags; a default options set serializes to {}.
 */
std::vector<std::string>
compileOptionsToFlags(const CompileOptions &options);

/**
 * Parse qsync-style flag tokens back into CompileOptions, reusing the
 * real CLI grammar so corpus entries and qsync never drift apart.
 * Throws UserError on unknown flags.
 */
CompileOptions
compileOptionsFromFlags(const std::vector<std::string> &tokens);

/**
 * Write `repro` under `corpus_dir` (created if missing). Returns the
 * entry directory path. An empty repro.name is replaced by a name
 * derived from the existing entry count.
 */
std::string saveReproducer(const std::string &corpus_dir,
                           const Reproducer &repro);

/** Load one entry directory back into memory. Throws UserError. */
Reproducer loadReproducer(const std::string &entry_dir);

/** Entry directories under `corpus_dir`, sorted by name; empty (not an
 *  error) when the directory does not exist. */
std::vector<std::string> listCorpus(const std::string &corpus_dir);

/** Replay an entry through the full oracle stack. */
CaseOutcome replayReproducer(const Reproducer &repro,
                             const OracleOptions &opts = {});

} // namespace qsyn::check
